package share

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/tracing"
)

var errLifetime = fmt.Errorf("share: LIFETIME is not supported for subscriptions (the coordinator cancels fragments when their last reference drops)")

// Defaults.
const (
	// DefaultCell is the fragment cell width in sensor ids. Smaller cells
	// share more aggressively but admit more in-network queries per
	// subscriber; 8 matches the region granularity of the paper workloads.
	DefaultCell = 8
	// DefaultWindow is how many released epochs the result cache retains
	// per fragment and per canonical query.
	DefaultWindow = 4
	// DefaultMaxPending bounds buffered incomplete epochs per query while
	// a fragment warms up or stalls.
	DefaultMaxPending = 16
)

// Config parametrizes a Coordinator.
type Config struct {
	// Upstream is the tier the fragments stream from: OverGateway or
	// OverRouter (required).
	Upstream Upstream
	// Sensors is the deployment's sensor id space 1..Sensors (required);
	// it lets a query with no region predicate share fragments with one
	// that names the full range explicitly.
	Sensors int
	// Cell is the fragment cell width in sensor ids (DefaultCell if <= 0).
	Cell int
	// Window is the result-cache depth in epochs (DefaultWindow if <= 0;
	// negative disables caching).
	Window int
	// Buffer bounds each downstream subscriber channel and resume ring
	// (gateway.DefaultBuffer if <= 0).
	Buffer int
	// MaxSessions and SessionQuota mirror the gateway limits, enforced at
	// the coordinator (the upstream sees only the coordinator's own
	// sessions).
	MaxSessions  int
	SessionQuota int
	// UpstreamQuota caps fragments per coordinator-owned upstream session;
	// the coordinator grows a session pool as the registry grows
	// (gateway.DefaultSessionQuota if <= 0, matching the upstream default).
	UpstreamQuota int
	// MaxPending bounds buffered incomplete epochs per canonical query
	// (DefaultMaxPending if <= 0).
	MaxPending int
	// Pressure, when set, reports the serving tier's brownout ladder rung
	// before each Advance's cache replay: at LevelNoReplay or hotter the
	// coordinator skips serving the windowed cache to fresh subscribers
	// (they go live without history), shedding the cheapest work first.
	Pressure func() resilience.Level
	// MailboxDeadline is the default staging-sojourn budget for downstream
	// subscribes, mirroring the gateway's: zero disables, a per-command
	// budget (SubscribeAsyncBudget / wire deadline_ms) overrides.
	MailboxDeadline time.Duration
	// Tracer, when set, records the coordinator's causal spans (subscribe,
	// fragment CSE hit vs residual admission, cache replay) into a
	// caller-owned flight recorder; nil disables tracing at this tier.
	Tracer *tracing.Recorder
}

func (c Config) withDefaults() Config {
	if c.Cell <= 0 {
		c.Cell = DefaultCell
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Window < 0 {
		c.Window = 0
	}
	if c.Buffer <= 0 {
		c.Buffer = gateway.DefaultBuffer
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = gateway.DefaultMaxSessions
	}
	if c.SessionQuota <= 0 {
		c.SessionQuota = gateway.DefaultSessionQuota
	}
	if c.UpstreamQuota <= 0 {
		c.UpstreamQuota = gateway.DefaultSessionQuota
	}
	if c.MaxPending <= 0 {
		c.MaxPending = DefaultMaxPending
	}
	return c
}

// Stats is the coordinator's counter snapshot. Like the gateway's, every
// field is a pure function of the committed command sequence and the
// upstream seed.
type Stats struct {
	Sessions       int64 `json:"sessions"`
	ActiveSessions int   `json:"active_sessions"`
	Subscribes     int64 `json:"subscribes"`
	Unsubscribes   int64 `json:"unsubscribes"`
	QuotaRejected  int64 `json:"quota_rejected"`
	// DedupHits counts subscribers joining an already-live canonical
	// query; Trees is the live canonical query gauge.
	DedupHits int64 `json:"dedup_hits"`
	Trees     int   `json:"trees"`
	// Fragment registry accounting: Created fragments paid an upstream
	// admission (the residual cost), Reused ones were already streaming
	// for another query, Cancelled ones were torn down at refcount zero.
	FragmentsCreated   int64 `json:"fragments_created"`
	FragmentsReused    int64 `json:"fragments_reused"`
	FragmentsCancelled int64 `json:"fragments_cancelled"`
	FragmentsActive    int   `json:"fragments_active"`
	UpstreamSessions   int   `json:"upstream_sessions"`
	// Windowed-cache accounting: a subscribe is a CacheHit when it
	// replayed at least one recent epoch immediately, a CacheMiss when it
	// had to wait out a live epoch. ReplayedEpochs counts epochs served
	// from cache.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	ReplayedEpochs int64 `json:"replayed_epochs"`
	// Epoch recombination: MergedEpochs released complete compositions;
	// PartialDropped counts epochs discarded because a fragment (admitted
	// later) never contributed; LateDropped counts fragment epochs older
	// than the released watermark.
	MergedEpochs   int64 `json:"merged_epochs"`
	PartialDropped int64 `json:"partial_dropped"`
	LateDropped    int64 `json:"late_dropped"`
	// Downstream delivery accounting, mirroring the gateway's.
	Updates     int64 `json:"updates"`
	Evicted     int64 `json:"evicted"`
	RingDropped int64 `json:"ring_dropped"`
	Resumes     int64 `json:"resumes"`
	ResumeGaps  int64 `json:"resume_gaps"`
	// Upstream failover accounting.
	Reattaches      int64 `json:"reattaches"`
	UpstreamResumes int64 `json:"upstream_resumes"`
	// Resilience accounting: ReplaySheds counts cache replays skipped under
	// brownout pressure, ShedDeadline counts subscribes shed because their
	// mailbox sojourn exceeded the budget, DegradedEpochs counts released
	// epochs built from degraded (partial-coverage) upstream updates.
	ReplaySheds    int64 `json:"replay_sheds"`
	ShedDeadline   int64 `json:"shed_deadline"`
	DegradedEpochs int64 `json:"degraded_epochs"`
}

// FragmentReuseRatio is the fraction of fragment references served by an
// already-materialized fragment (> 0 means CSE is sharing work).
func (st Stats) FragmentReuseRatio() float64 {
	total := st.FragmentsCreated + st.FragmentsReused
	if total == 0 {
		return 0
	}
	return float64(st.FragmentsReused) / float64(total)
}

// CacheHitRatio is the fraction of subscribes served an immediate replay.
func (st Stats) CacheHitRatio() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// cachedEpoch is one retained result epoch. degraded/coverage survive the
// cache so a stale epoch served during a shard brownout still tells the
// subscriber how much of the field it covers.
type cachedEpoch struct {
	at       sim.Time
	rows     []query.Row
	aggs     []query.AggResult
	degraded bool
	coverage float64
	// shards is the provenance shard mask OR'd over the contributing
	// upstream updates (zero when the upstream tier is untraced).
	shards uint64
}

// fragRef ties a fragment to one referencing tree and its planned index.
type fragRef struct {
	tr  *shareTree
	idx int
}

// fragment is one refcounted upstream stream in the registry.
type fragment struct {
	key     string
	q       query.Query
	sess    UpstreamSession
	sessIdx int
	tk      UpstreamTicket // pending until the next Advance resolves it
	sub     UpstreamSub
	id      gateway.SubID
	lastSeq uint64
	refs    int
	trees   []fragRef
	ring    []cachedEpoch // last Window epochs, oldest first
}

// shareTree is one canonical downstream query: its plan, its fragment
// composition and its subscribers.
type shareTree struct {
	key   string
	p     *sharePlan
	frags []*fragment // parallel to p.frags
	fresh bool        // some fragment was created for this tree (no warm cache)
	qid   query.ID    // representative upstream query id (first fragment's)
	subs  []*Sub      // ascending SubID
	// pending buffers epochs until every fragment has contributed.
	pending  map[sim.Time]*shareAcc
	released sim.Time // newest instant delivered (or seeded by replay)
	ring     []cachedEpoch
	broken   error
	// reused counts the fragments satisfied by cross-query sharing when
	// the tree was established (provenance: Prov.Reused on deliveries).
	reused int
}

func (tr *shareTree) acc(at sim.Time) *shareAcc {
	a := tr.pending[at]
	if a == nil {
		a = newShareAcc(at)
		if tr.pending == nil {
			tr.pending = make(map[sim.Time]*shareAcc, 4)
		}
		tr.pending[at] = a
	}
	return a
}

type scmdKind uint8

const (
	cmdSubscribe scmdKind = iota
	cmdUnsubscribe
	cmdClose
)

// scmd is a staged downstream command, committed in deterministic
// (session name, seq) order at the next Advance.
type scmd struct {
	kind scmdKind
	sess *Session
	seq  uint64
	q    query.Query
	id   gateway.SubID
	done chan sres
	// at/deadline implement the mailbox sojourn budget (see the gateway's
	// command struct): a subscribe still staged past its budget at commit
	// time is shed with resilience.ErrOverloaded.
	at       time.Time
	deadline time.Duration
	// trace is the subscriber-propagated causal context (zero derives one
	// at commit when tracing is enabled).
	trace tracing.Context
}

type sres struct {
	sub *Sub
	err error
}

// Ticket is a staged subscribe/unsubscribe resolving at the next Advance.
type Ticket struct {
	done chan sres
}

// Wait blocks until the next Advance commits the command.
func (t *Ticket) Wait() (*Sub, error) {
	r := <-t.done
	return r.sub, r.err
}

// pendingAck defers a subscribe reply past fragment resolution and cache
// replay.
type pendingAck struct {
	c       *scmd
	sub     *Sub
	tr      *shareTree
	newTree bool
}

// Coordinator is the sharing layer. It implements gateway.Backend, so the
// TCP server (or any driver) fronts it exactly like a gateway or a
// federation router.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	up      Upstream
	upSess  []UpstreamSession
	upLoad  []int // live fragments per upstream session
	closed  bool
	nextSub gateway.SubID
	nextTok uint64

	sessions map[string]*Session
	staged   []*scmd
	frags    map[string]*fragment
	trees    map[string]*shareTree
	resolve  []*fragment // fragments with pending tickets
	stats    Stats
}

// New builds a coordinator over cfg.Upstream. The upstream must be fresh:
// the coordinator assumes it is the only driver of upstream Advance.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("share: Config.Upstream is required")
	}
	if cfg.Sensors <= 0 {
		return nil, fmt.Errorf("share: Config.Sensors must name the sensor id space (got %d)", cfg.Sensors)
	}
	c := &Coordinator{
		cfg:      cfg.withDefaults(),
		up:       cfg.Upstream,
		sessions: make(map[string]*Session),
		frags:    make(map[string]*fragment),
		trees:    make(map[string]*shareTree),
	}
	return c, nil
}

// ShareStats snapshots the coordinator's own counters.
func (c *Coordinator) ShareStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

func (c *Coordinator) statsLocked() Stats {
	st := c.stats
	st.ActiveSessions = len(c.sessions)
	st.Trees = len(c.trees)
	st.FragmentsActive = len(c.frags)
	st.UpstreamSessions = len(c.upSess)
	return st
}

// Now returns the upstream's virtual clock.
func (c *Coordinator) Now() (sim.Time, error) { return c.up.Now() }

// Alive reports whether the upstream is up.
func (c *Coordinator) Alive() bool { return c.up.Alive() }

// ServeStats implements gateway.Backend: the upstream's counters with the
// serving-tier fields overridden by the coordinator's own view, so one
// status line reads correctly whichever backend the server fronts.
func (c *Coordinator) ServeStats() (gateway.Stats, sim.Time, error) {
	st, now, err := c.up.ServeStats()
	if err != nil {
		return st, now, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.statsLocked()
	st.Sessions = s.Sessions
	st.ActiveSessions = s.ActiveSessions
	st.Subscribes = s.Subscribes
	st.Unsubscribes = s.Unsubscribes
	st.DedupHits = s.DedupHits
	st.QuotaRejected += s.QuotaRejected
	st.Evicted += s.Evicted
	st.RingDropped += s.RingDropped
	st.Resumes = s.Resumes
	st.ResumeGaps = s.ResumeGaps
	st.SharedQueries = s.Trees
	st.Updates = s.Updates
	active := 0
	for _, sess := range c.sessions {
		active += len(sess.live)
	}
	st.ActiveSubscriptions = active
	return st, now, nil
}

func (c *Coordinator) mintToken(name string) string {
	c.nextTok++
	h := fnv.New64a()
	fmt.Fprintf(h, "share:%s:%d", name, c.nextTok)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ---------------------------------------------------------------------------
// Downstream sessions

// Session is one registered downstream client.
type Session struct {
	c     *Coordinator
	name  string
	token string

	// Guarded by c.mu.
	seq      uint64
	live     map[gateway.SubID]*Sub
	attached bool
	closed   bool
}

// Name returns the session's registered name.
func (s *Session) Name() string { return s.name }

// Token returns the resume token for Attach after a disconnect.
func (s *Session) Token() string { return s.token }

// Sub is one downstream subscription to a composed fragment stream. It
// satisfies gateway.ServerSub.
type Sub struct {
	sess   *Session
	tr     *shareTree
	id     gateway.SubID
	key    string
	shared bool

	// Guarded by sess.c.mu.
	seq      uint64
	ch       chan gateway.Update
	ring     []gateway.Update // parked tail while detached
	detached bool
	reason   gateway.CloseReason
	// trace/spanID are the subscription's causal-trace identity and its
	// subscribe span (parent for the cache-replay span); zero untraced.
	trace  uint64
	spanID uint64
}

// ID returns the subscription id (unique within the coordinator).
func (s *Sub) ID() gateway.SubID { return s.id }

// TraceID reports the subscription's causal-trace identity (0 untraced).
func (s *Sub) TraceID() uint64 { return s.trace }

// Key returns the canonical downstream query text.
func (s *Sub) Key() string { return s.key }

// Shared reports whether the subscription joined a live canonical query.
func (s *Sub) Shared() bool { return s.shared }

// QueryID returns the representative upstream query id of the tree.
func (s *Sub) QueryID() query.ID {
	s.sess.c.mu.Lock()
	defer s.sess.c.mu.Unlock()
	return s.tr.qid
}

// Updates returns the live update channel (replaced on Resume).
func (s *Sub) Updates() <-chan gateway.Update {
	s.sess.c.mu.Lock()
	defer s.sess.c.mu.Unlock()
	return s.ch
}

// Reason reports why the channel closed (ReasonNone while live).
func (s *Sub) Reason() gateway.CloseReason {
	s.sess.c.mu.Lock()
	defer s.sess.c.mu.Unlock()
	return s.reason
}

// Register creates a downstream session.
func (c *Coordinator) Register(name string) (*Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, gateway.ErrClosed
	}
	if _, dup := c.sessions[name]; dup {
		return nil, fmt.Errorf("share: session %q already registered", name)
	}
	if len(c.sessions) >= c.cfg.MaxSessions {
		return nil, fmt.Errorf("share: session limit %d reached", c.cfg.MaxSessions)
	}
	s := &Session{
		c:        c,
		name:     name,
		token:    c.mintToken(name),
		live:     make(map[gateway.SubID]*Sub),
		attached: true,
	}
	c.sessions[name] = s
	c.stats.Sessions++
	return s, nil
}

// Attach re-claims a detached session by name and token.
func (c *Coordinator) Attach(name, token string) (*Session, []gateway.ResumeInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, gateway.ErrClosed
	}
	s := c.sessions[name]
	if s == nil {
		return nil, nil, fmt.Errorf("share: no session %q", name)
	}
	if s.token != token {
		return nil, nil, fmt.Errorf("share: bad token for session %q", name)
	}
	if s.attached {
		return nil, nil, fmt.Errorf("share: session %q is already attached", name)
	}
	s.attached = true
	infos := make([]gateway.ResumeInfo, 0, len(s.live))
	for _, id := range sortedIDs(s.live) {
		sub := s.live[id]
		infos = append(infos, gateway.ResumeInfo{
			ID: id, Key: sub.key, QueryID: sub.tr.qid, LastSeq: sub.seq,
		})
	}
	return s, infos, nil
}

// RegisterSession implements gateway.Backend.
func (c *Coordinator) RegisterSession(name string) (gateway.ServerSession, error) {
	s, err := c.Register(name)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// AttachSession implements gateway.Backend.
func (c *Coordinator) AttachSession(name, token string) (gateway.ServerSession, []gateway.ResumeInfo, error) {
	s, infos, err := c.Attach(name, token)
	if err != nil {
		return nil, nil, err
	}
	return s, infos, nil
}

// SubscribeAsync stages a subscription, committed at the next Advance.
func (s *Session) SubscribeAsync(q query.Query) (*Ticket, error) {
	return s.SubscribeAsyncBudget(q, 0)
}

// SubscribeAsyncBudget stages a subscription carrying a mailbox deadline
// budget: a command still staged past the budget at commit time is shed
// with resilience.ErrOverloaded. The budget is not forwarded to fragment
// admissions — fragments are shared across trees, so one subscriber's
// deadline must not cancel another's stream. Zero falls back to
// Config.MailboxDeadline.
func (s *Session) SubscribeAsyncBudget(q query.Query, budget time.Duration) (*Ticket, error) {
	return s.SubscribeAsyncTraced(q, budget, tracing.Context{})
}

// SubscribeAsyncTraced is SubscribeAsyncBudget with a subscriber-propagated
// causal-trace context: the coordinator's subscribe span parents on
// tc.Span, and the context rides residual fragment admissions upstream so
// every tier's spans join one trace. A zero context derives a
// deterministic trace at commit.
func (s *Session) SubscribeAsyncTraced(q query.Query, budget time.Duration, tc tracing.Context) (*Ticket, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, gateway.ErrClosed
	}
	if s.closed {
		return nil, fmt.Errorf("share: session %q is closed", s.name)
	}
	s.seq++
	cmd := &scmd{kind: cmdSubscribe, sess: s, seq: s.seq, q: q, done: make(chan sres, 1),
		at: time.Now(), deadline: budget, trace: tc}
	c.staged = append(c.staged, cmd)
	return &Ticket{done: cmd.done}, nil
}

// SubscribeQuery implements gateway.ServerSession: parse, stage, wait.
func (s *Session) SubscribeQuery(text string) (gateway.ServerSub, error) {
	return s.SubscribeQueryBudget(text, 0)
}

// SubscribeQueryBudget implements gateway.BudgetSubscriber.
func (s *Session) SubscribeQueryBudget(text string, budget time.Duration) (gateway.ServerSub, error) {
	return s.SubscribeQueryTraced(text, budget, 0)
}

// SubscribeQueryTraced implements gateway.TracedSubscriber: the wire
// trace_id (or a derived trace) keys every coordinator and upstream span
// this subscription produces.
func (s *Session) SubscribeQueryTraced(text string, budget time.Duration, trace uint64) (gateway.ServerSub, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	tk, err := s.SubscribeAsyncTraced(q, budget, tracing.Context{Trace: trace})
	if err != nil {
		return nil, err
	}
	sub, err := tk.Wait()
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// UnsubscribeAsync stages an unsubscribe, committed at the next Advance.
func (s *Session) UnsubscribeAsync(id gateway.SubID) (*Ticket, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, gateway.ErrClosed
	}
	if s.closed {
		return nil, fmt.Errorf("share: session %q is closed", s.name)
	}
	s.seq++
	cmd := &scmd{kind: cmdUnsubscribe, sess: s, seq: s.seq, id: id, done: make(chan sres, 1)}
	c.staged = append(c.staged, cmd)
	return &Ticket{done: cmd.done}, nil
}

// Unsubscribe implements gateway.ServerSession (blocks until commit).
func (s *Session) Unsubscribe(id gateway.SubID) error {
	tk, err := s.UnsubscribeAsync(id)
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// Detach releases the connection but keeps the session resumable: live
// streams park their tails in bounded rings.
func (s *Session) Detach() error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return gateway.ErrClosed
	}
	if s.closed {
		return fmt.Errorf("share: session %q is closed", s.name)
	}
	if !s.attached {
		return fmt.Errorf("share: session %q is already detached", s.name)
	}
	s.attached = false
	for _, id := range sortedIDs(s.live) {
		s.live[id].detachLocked()
	}
	return nil
}

func (sub *Sub) detachLocked() {
	if sub.detached || sub.reason != gateway.ReasonNone {
		return
	}
	sub.detached = true
	sub.reason = gateway.ReasonDetached
	close(sub.ch)
	for u := range sub.ch {
		sub.pushRingLocked(u)
	}
}

func (sub *Sub) pushRingLocked(u gateway.Update) {
	c := sub.sess.c
	sub.ring = append(sub.ring, u)
	if max := c.cfg.Buffer; len(sub.ring) > max {
		drop := len(sub.ring) - max
		sub.ring = append(sub.ring[:0], sub.ring[drop:]...)
		c.stats.RingDropped += int64(drop)
	}
}

// Resume revives a detached stream from just after sequence `after`,
// replaying the parked tail before going live. Implements
// gateway.ServerSession.
func (s *Session) Resume(id gateway.SubID, after uint64) (gateway.ServerSub, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, gateway.ErrClosed
	}
	if !s.attached {
		return nil, fmt.Errorf("share: session %q is detached", s.name)
	}
	sub := s.live[id]
	if sub == nil {
		return nil, fmt.Errorf("share: session %q has no stream %d", s.name, id)
	}
	if !sub.detached {
		return nil, fmt.Errorf("share: stream %d is already attached", id)
	}
	sub.ch = make(chan gateway.Update, c.cfg.Buffer)
	if len(sub.ring) > 0 && sub.ring[0].Seq > after+1 {
		c.stats.ResumeGaps++
	}
	for _, u := range sub.ring {
		if u.Seq > after {
			sub.ch <- u
		}
	}
	sub.ring = nil
	sub.detached = false
	sub.reason = gateway.ReasonNone
	c.stats.Resumes++
	return sub, nil
}

// CloseAsync stages session teardown; completion lags until the next
// Advance. Implements gateway.ServerSession.
func (s *Session) CloseAsync() error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return gateway.ErrClosed
	}
	if s.closed {
		return nil
	}
	s.seq++
	cmd := &scmd{kind: cmdClose, sess: s, seq: s.seq, done: make(chan sres, 1)}
	c.staged = append(c.staged, cmd)
	return nil
}

// ---------------------------------------------------------------------------
// Advance: group commit, upstream advance, drain, recombine, release

// Advance commits staged downstream commands, advances the upstream by d,
// drains fragment streams, recombines complete epochs and replays cached
// windows to fresh subscribers. Implements gateway.Backend.
func (c *Coordinator) Advance(d time.Duration) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, gateway.ErrClosed
	}

	applied, acks := c.commitLocked()

	_, upErr := c.up.Advance(d)

	c.resolveFragsLocked()
	c.replayLocked(acks)
	c.drainLocked()
	c.releaseLocked()
	c.ackLocked(acks)
	return applied, upErr
}

func (c *Coordinator) commitLocked() (int, []pendingAck) {
	staged := c.staged
	c.staged = nil
	sort.SliceStable(staged, func(i, j int) bool {
		if staged[i].sess.name != staged[j].sess.name {
			return staged[i].sess.name < staged[j].sess.name
		}
		return staged[i].seq < staged[j].seq
	})
	wall := time.Now()
	var acks []pendingAck
	for _, cmd := range staged {
		switch cmd.kind {
		case cmdSubscribe:
			if err := c.checkDeadlineLocked(cmd, wall); err != nil {
				cmd.done <- sres{err: err}
				continue
			}
			ack, err := c.applySubscribeLocked(cmd)
			if err != nil {
				cmd.done <- sres{err: err}
				continue
			}
			acks = append(acks, ack)
		case cmdUnsubscribe:
			cmd.done <- sres{err: c.applyUnsubscribeLocked(cmd)}
		case cmdClose:
			c.applyCloseLocked(cmd.sess)
			cmd.done <- sres{}
		}
	}
	return len(staged), acks
}

// checkDeadlineLocked sheds a staged subscribe whose mailbox sojourn
// (stage to commit, wall clock) exceeded its budget.
func (c *Coordinator) checkDeadlineLocked(cmd *scmd, wall time.Time) error {
	budget := cmd.deadline
	if budget <= 0 {
		budget = c.cfg.MailboxDeadline
	}
	if budget <= 0 || cmd.at.IsZero() || wall.Sub(cmd.at) <= budget {
		return nil
	}
	c.stats.ShedDeadline++
	return &resilience.OverloadError{RetryAfter: gateway.DefaultShedRetryAfter, Reason: "deadline"}
}

func (c *Coordinator) applySubscribeLocked(cmd *scmd) (pendingAck, error) {
	s := cmd.sess
	if s.closed {
		return pendingAck{}, fmt.Errorf("share: session %q is closed", s.name)
	}
	if len(s.live) >= c.cfg.SessionQuota {
		c.stats.QuotaRejected++
		return pendingAck{}, fmt.Errorf("share: session %q is at its quota of %d subscriptions",
			s.name, c.cfg.SessionQuota)
	}
	p, err := planShare(cmd.q, c.cfg.Sensors, c.cfg.Cell)
	if err != nil {
		return pendingAck{}, err
	}
	c.stats.Subscribes++
	trace, subSpan := c.traceSubscribeLocked(cmd)
	tr := c.trees[p.key]
	newTree := tr == nil
	if newTree {
		tr = &shareTree{key: p.key, p: p}
		for i, fq := range p.frags {
			fr := c.frags[fq.key]
			if fr == nil {
				fctx := c.traceFragLocked(trace, subSpan, tracing.KindResidualAdmit, fq.key)
				fr, err = c.materializeLocked(fq, fctx)
				if err != nil {
					// Roll back the references this tree already took.
					for _, held := range tr.frags {
						c.decrefLocked(held, tr)
					}
					return pendingAck{}, err
				}
				tr.fresh = true
				c.stats.FragmentsCreated++
			} else {
				c.traceFragLocked(trace, subSpan, tracing.KindCSEHit, fq.key)
				tr.reused++
				c.stats.FragmentsReused++
			}
			fr.refs++
			fr.trees = append(fr.trees, fragRef{tr: tr, idx: i})
			tr.frags = append(tr.frags, fr)
		}
		c.trees[p.key] = tr
	} else {
		c.stats.DedupHits++
		if c.cfg.Tracer != nil && trace != 0 {
			c.cfg.Tracer.Record(tracing.Span{
				Trace:  trace,
				Parent: subSpan,
				Kind:   tracing.KindDedupHit,
				Shard:  tracing.NoShard,
				AtMS:   c.nowMS(),
				Frags:  len(tr.frags),
				Reused: tr.reused,
				Note:   p.key,
			})
		}
	}
	c.nextSub++
	sub := &Sub{
		sess:   s,
		tr:     tr,
		id:     c.nextSub,
		key:    p.key,
		shared: !newTree,
		trace:  trace,
		spanID: subSpan,
		ch:     make(chan gateway.Update, c.cfg.Buffer),
	}
	if !s.attached {
		sub.detached = true
		sub.reason = gateway.ReasonDetached
	}
	tr.subs = append(tr.subs, sub)
	s.live[sub.id] = sub
	return pendingAck{c: cmd, sub: sub, tr: tr, newTree: newTree}, nil
}

// traceSubscribeLocked assigns a committed subscribe its causal trace
// (propagated or derived from session name + staged seq) and records the
// share tier's subscribe hop. Returns zeros when tracing is off.
func (c *Coordinator) traceSubscribeLocked(cmd *scmd) (trace, span uint64) {
	if c.cfg.Tracer == nil {
		return 0, 0
	}
	trace = cmd.trace.Trace
	if trace == 0 {
		trace = tracing.TraceID(cmd.sess.name, cmd.seq)
	}
	span = c.cfg.Tracer.Record(tracing.Span{
		Trace:  trace,
		Parent: cmd.trace.Span,
		Kind:   tracing.KindSubscribe,
		Shard:  tracing.NoShard,
		AtMS:   c.nowMS(),
		Seq:    cmd.seq,
	})
	return trace, span
}

// traceFragLocked records one fragment hop (residual-admit or cse-hit)
// and returns the context a residual admission carries upstream, so the
// upstream tier's spans parent on the fragment hop that caused them.
func (c *Coordinator) traceFragLocked(trace, parent uint64, kind, key string) tracing.Context {
	if c.cfg.Tracer == nil || trace == 0 {
		return tracing.Context{}
	}
	id := c.cfg.Tracer.Record(tracing.Span{
		Trace:  trace,
		Parent: parent,
		Kind:   kind,
		Shard:  tracing.NoShard,
		AtMS:   c.nowMS(),
		Note:   key,
	})
	return tracing.Context{Trace: trace, Span: id}
}

// nowMS is the coordinator's virtual clock in milliseconds (zero when the
// upstream is down; spans recorded during an outage still order by Seq).
func (c *Coordinator) nowMS() int64 {
	now, err := c.up.Now()
	if err != nil {
		return 0
	}
	return time.Duration(now).Milliseconds()
}

// materializeLocked admits one new fragment upstream: it picks (or grows)
// an upstream session with quota headroom and stages the subscribe; the
// ticket resolves after the upstream's next Advance. fctx, when live,
// rides the admission so the upstream tier joins the fragment's trace.
func (c *Coordinator) materializeLocked(fq fragQuery, fctx tracing.Context) (*fragment, error) {
	idx := -1
	for i, load := range c.upLoad {
		if load < c.cfg.UpstreamQuota {
			idx = i
			break
		}
	}
	if idx == -1 {
		sess, err := c.up.Register(fmt.Sprintf("share-up-%d", len(c.upSess)))
		if err != nil {
			return nil, fmt.Errorf("share: upstream session: %w", err)
		}
		c.upSess = append(c.upSess, sess)
		c.upLoad = append(c.upLoad, 0)
		idx = len(c.upSess) - 1
	}
	var tk UpstreamTicket
	var err error
	if ts, ok := c.upSess[idx].(tracedUpstreamSession); ok && fctx.Trace != 0 {
		tk, err = ts.SubscribeAsyncTraced(fq.q, fctx)
	} else {
		tk, err = c.upSess[idx].SubscribeAsync(fq.q)
	}
	if err != nil {
		return nil, fmt.Errorf("share: fragment subscribe: %w", err)
	}
	fr := &fragment{key: fq.key, q: fq.q, sess: c.upSess[idx], sessIdx: idx, tk: tk}
	c.frags[fq.key] = fr
	c.upLoad[idx]++
	c.resolve = append(c.resolve, fr)
	return fr, nil
}

// decrefLocked drops one tree's reference on a fragment, cancelling the
// upstream stream at refcount zero. This runs on every path a subscriber
// leaves by — unsubscribe, session close, slow-consumer eviction — so an
// evicted session's fragments are released exactly like a cancelled one's.
func (c *Coordinator) decrefLocked(fr *fragment, tr *shareTree) {
	for i, ref := range fr.trees {
		if ref.tr == tr {
			fr.trees = append(fr.trees[:i], fr.trees[i+1:]...)
			break
		}
	}
	fr.refs--
	if fr.refs > 0 {
		return
	}
	delete(c.frags, fr.key)
	c.upLoad[fr.sessIdx]--
	if fr.sub != nil {
		if err := fr.sess.UnsubscribeAsync(fr.id); err == nil {
			c.stats.FragmentsCancelled++
		}
	} else {
		// Never resolved: still count the teardown; the ticket's stream is
		// dropped when it resolves.
		c.stats.FragmentsCancelled++
	}
	fr.sub = nil
}

func (c *Coordinator) applyUnsubscribeLocked(cmd *scmd) error {
	s := cmd.sess
	sub := s.live[cmd.id]
	if sub == nil {
		return fmt.Errorf("share: session %q has no subscription %d", s.name, cmd.id)
	}
	c.stats.Unsubscribes++
	c.dropSubLocked(sub, gateway.ReasonUnsubscribed)
	return nil
}

func (c *Coordinator) applyCloseLocked(s *Session) {
	if s.closed {
		return
	}
	for _, id := range sortedIDs(s.live) {
		c.dropSubLocked(s.live[id], gateway.ReasonShutdown)
	}
	s.closed = true
	s.attached = false
	delete(c.sessions, s.name)
}

// dropSubLocked closes a downstream stream and, on last-unsubscribe,
// tears its tree down (releasing the fragment references).
func (c *Coordinator) dropSubLocked(sub *Sub, reason gateway.CloseReason) {
	s := sub.sess
	delete(s.live, sub.id)
	if sub.reason == gateway.ReasonNone || sub.detached {
		if sub.detached {
			sub.ring = nil
			sub.reason = reason
		} else {
			sub.reason = reason
			close(sub.ch)
		}
	}
	tr := sub.tr
	for i, other := range tr.subs {
		if other == sub {
			tr.subs = append(tr.subs[:i], tr.subs[i+1:]...)
			break
		}
	}
	if len(tr.subs) == 0 {
		c.teardownTreeLocked(tr)
	}
}

func (c *Coordinator) teardownTreeLocked(tr *shareTree) {
	for _, fr := range tr.frags {
		c.decrefLocked(fr, tr)
	}
	tr.frags = nil
	delete(c.trees, tr.key)
}

// resolveFragsLocked collects the fragment tickets staged at commit (the
// upstream Advance has committed them) and wires the streams.
func (c *Coordinator) resolveFragsLocked() {
	pending := c.resolve
	c.resolve = nil
	for _, fr := range pending {
		sub, err := fr.tk.Wait()
		fr.tk = nil
		if err != nil {
			for _, ref := range fr.trees {
				if ref.tr.broken == nil {
					ref.tr.broken = fmt.Errorf("share: fragment admission %q: %w", fr.key, err)
				}
			}
			continue
		}
		if fr.refs == 0 {
			// Every referencing tree left before resolution: cancel.
			_ = fr.sess.UnsubscribeAsync(sub.ID())
			continue
		}
		fr.sub = sub
		fr.id = sub.ID()
		fr.lastSeq = 0
		for _, ref := range fr.trees {
			if ref.idx == 0 {
				ref.tr.qid = sub.QueryID()
			}
		}
	}
}

// replayLocked serves the windowed cache to fresh subscribers before any
// live epoch from this Advance can reach them, keeping per-stream virtual
// time monotonic. A subscriber joining a live tree replays the tree's own
// released window; the first subscriber of a new tree whose fragments all
// pre-existed gets a window synthesized from the fragment caches.
func (c *Coordinator) replayLocked(acks []pendingAck) {
	if p := c.cfg.Pressure; p != nil && p() >= resilience.LevelNoReplay {
		// Brownout: replay is the first work shed. Fresh subscribers go
		// live without history instead of costing a window of pushes each.
		for _, a := range acks {
			if a.tr.broken == nil {
				c.stats.ReplaySheds++
			}
		}
		return
	}
	if c.cfg.Window <= 0 {
		for _, a := range acks {
			if a.tr.broken == nil {
				c.stats.CacheMisses++
			}
		}
		return
	}
	synthesized := make(map[*shareTree]bool)
	for _, a := range acks {
		tr := a.tr
		if tr.broken != nil {
			continue
		}
		if a.newTree && !tr.fresh && !synthesized[tr] {
			c.synthesizeLocked(tr)
			synthesized[tr] = true
		}
		if len(tr.ring) == 0 {
			c.stats.CacheMisses++
			continue
		}
		c.stats.CacheHits++
		for _, e := range tr.ring {
			c.pushLocked(tr, a.sub, e, true)
			c.stats.ReplayedEpochs++
		}
		if c.cfg.Tracer != nil && a.sub.trace != 0 {
			oldest := time.Duration(tr.ring[0].at).Milliseconds()
			newest := time.Duration(tr.ring[len(tr.ring)-1].at).Milliseconds()
			c.cfg.Tracer.Record(tracing.Span{
				Trace:    a.sub.trace,
				Parent:   a.sub.spanID,
				Kind:     tracing.KindCacheReplay,
				Shard:    tracing.NoShard,
				AtMS:     c.nowMS(),
				DurMS:    newest - oldest,
				Seq:      uint64(len(tr.ring)),
				CacheHit: true,
				Frags:    len(tr.frags),
			})
		}
	}
}

// synthesizeLocked rebuilds a new tree's recent window from the caches of
// its (all pre-existing) fragments: the epochs present in every fragment
// ring recombine exactly like live ones.
func (c *Coordinator) synthesizeLocked(tr *shareTree) {
	counts := make(map[sim.Time]int)
	for _, fr := range tr.frags {
		for _, e := range fr.ring {
			counts[e.at]++
		}
	}
	var ats []sim.Time
	for at, n := range counts {
		if n == len(tr.frags) {
			ats = append(ats, at)
		}
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	if len(ats) > c.cfg.Window {
		ats = ats[len(ats)-c.cfg.Window:]
	}
	for _, at := range ats {
		acc := newShareAcc(at)
		for i, fr := range tr.frags {
			for _, e := range fr.ring {
				if e.at == at {
					acc.add(i, gateway.Update{At: at, Rows: e.rows, Aggs: e.aggs,
						Degraded: e.degraded, Coverage: e.coverage,
						Prov: tracing.Prov{Shards: e.shards}})
					break
				}
			}
		}
		rows, aggs := acc.finish(tr.p)
		tr.ring = append(tr.ring, cachedEpoch{at: at, rows: rows, aggs: aggs,
			degraded: acc.degraded, coverage: acc.cov(), shards: acc.shards})
		tr.released = at
	}
}

// drainLocked empties every live fragment stream into the referencing
// trees' epoch accumulators and the fragment's cache ring.
func (c *Coordinator) drainLocked() {
	for _, key := range sortedFragKeys(c.frags) {
		fr := c.frags[key]
		if fr.sub == nil {
			continue
		}
		ch := fr.sub.Updates()
		for {
			select {
			case u, ok := <-ch:
				if !ok {
					// The upstream closed the stream under us (crash or
					// eviction); the tree stalls until reattach/teardown.
					fr.sub = nil
					goto next
				}
				fr.lastSeq = u.Seq
				c.mergeLocked(fr, u)
			default:
				goto next
			}
		}
	next:
	}
}

func (c *Coordinator) mergeLocked(fr *fragment, u gateway.Update) {
	if c.cfg.Window > 0 {
		fr.ring = append(fr.ring, cachedEpoch{at: u.At, rows: u.Rows, aggs: u.Aggs,
			degraded: u.Degraded, coverage: u.Coverage, shards: u.Prov.Shards})
		if len(fr.ring) > c.cfg.Window {
			fr.ring = append(fr.ring[:0], fr.ring[len(fr.ring)-c.cfg.Window:]...)
		}
	}
	for _, ref := range fr.trees {
		if ref.tr.released > 0 && u.At <= ref.tr.released {
			c.stats.LateDropped++
			continue
		}
		ref.tr.acc(u.At).add(ref.idx, u)
	}
}

// releaseLocked delivers every complete epoch in virtual-time order. An
// incomplete epoch older than a complete one can never complete (aligned
// epochs: a fragment that skipped it will not revisit it) and is dropped
// rather than delivered with wrong partial values.
func (c *Coordinator) releaseLocked() {
	for _, key := range sortedTreeKeys(c.trees) {
		tr := c.trees[key]
		if len(tr.pending) == 0 {
			continue
		}
		ats := make([]sim.Time, 0, len(tr.pending))
		for at := range tr.pending {
			ats = append(ats, at)
		}
		sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
		for _, at := range ats {
			acc := tr.pending[at]
			if !acc.complete(len(tr.frags)) {
				continue
			}
			c.releaseEpochLocked(tr, acc)
			delete(tr.pending, at)
			tr.released = at
		}
		// Sweep unreleasable epochs: older than the watermark, or beyond
		// the pending bound (a stalled fragment must not leak memory).
		for at := range tr.pending {
			if at <= tr.released {
				delete(tr.pending, at)
				c.stats.PartialDropped++
			}
		}
		for len(tr.pending) > c.cfg.MaxPending {
			oldest := sim.Time(1<<63 - 1)
			for at := range tr.pending {
				if at < oldest {
					oldest = at
				}
			}
			delete(tr.pending, oldest)
			c.stats.PartialDropped++
		}
		// A tree can lose its last subscriber via eviction during release.
		if len(tr.subs) == 0 {
			c.teardownTreeLocked(tr)
		}
	}
}

func (c *Coordinator) releaseEpochLocked(tr *shareTree, acc *shareAcc) {
	c.stats.MergedEpochs++
	if acc.degraded {
		c.stats.DegradedEpochs++
	}
	rows, aggs := acc.finish(tr.p)
	e := cachedEpoch{at: acc.at, rows: rows, aggs: aggs,
		degraded: acc.degraded, coverage: acc.cov(), shards: acc.shards}
	if c.cfg.Window > 0 {
		tr.ring = append(tr.ring, e)
		if len(tr.ring) > c.cfg.Window {
			tr.ring = append(tr.ring[:0], tr.ring[len(tr.ring)-c.cfg.Window:]...)
		}
	}
	var evicted []*Sub
	for _, sub := range tr.subs {
		if !c.pushLocked(tr, sub, e, false) {
			evicted = append(evicted, sub)
		}
	}
	for _, sub := range evicted {
		c.stats.Evicted++
		c.dropSubEvictedLocked(sub)
	}
}

// pushLocked delivers one epoch to one subscriber without blocking,
// reporting false when the subscriber has stalled past its buffer bound.
// replay marks cache-window deliveries so the provenance record
// distinguishes them from live releases.
func (c *Coordinator) pushLocked(tr *shareTree, sub *Sub, e cachedEpoch, replay bool) bool {
	sub.seq++
	u := gateway.Update{
		Sub:      sub.id,
		QueryID:  tr.qid,
		Seq:      sub.seq,
		At:       e.at,
		Rows:     e.rows,
		Aggs:     e.aggs,
		Degraded: e.degraded,
		Coverage: e.coverage,
		Enqueued: time.Now(),
	}
	if sub.trace != 0 {
		u.Trace = sub.trace
		u.Prov = tracing.Prov{
			Shards:   e.shards,
			Frags:    uint16(len(tr.frags)),
			Reused:   uint16(tr.reused),
			CacheHit: replay,
		}
		if p := c.cfg.Pressure; p != nil {
			u.Prov.Rung = uint8(p())
		}
	}
	if sub.detached {
		sub.pushRingLocked(u)
		c.stats.Updates++
		return true
	}
	select {
	case sub.ch <- u:
		c.stats.Updates++
		return true
	default:
		return false
	}
}

// dropSubEvictedLocked removes an overflowed subscriber without tearing
// the tree down mid-release (releaseLocked sweeps empty trees after).
// The fragment refcounts release through the same teardown as explicit
// cancels, so an evicted slow consumer never strands upstream queries.
func (c *Coordinator) dropSubEvictedLocked(sub *Sub) {
	delete(sub.sess.live, sub.id)
	sub.reason = gateway.ReasonEvicted
	close(sub.ch)
	tr := sub.tr
	for i, other := range tr.subs {
		if other == sub {
			tr.subs = append(tr.subs[:i], tr.subs[i+1:]...)
			break
		}
	}
}

// ackLocked replies to the deferred subscribe commands, failing those
// whose trees broke during fragment establishment.
func (c *Coordinator) ackLocked(acks []pendingAck) {
	for _, a := range acks {
		if a.tr.broken != nil {
			err := a.tr.broken
			if _, live := a.sub.sess.live[a.sub.id]; live {
				c.dropSubLocked(a.sub, gateway.ReasonShutdown)
			}
			a.c.done <- sres{err: err}
			continue
		}
		a.c.done <- sres{sub: a.sub}
	}
}

// ---------------------------------------------------------------------------
// Upstream failover

// Reattach rebinds the coordinator to a recovered upstream (e.g. a
// gateway rebuilt from its WAL after a crash): every coordinator-owned
// upstream session re-claims its name and token, and every fragment
// stream resumes from its last drained sequence number — so downstream
// subscribers see a pause, never a duplicate or a gap, and the windowed
// cache (which lives here, not upstream) keeps serving replays across
// the outage.
func (c *Coordinator) Reattach(up Upstream) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return gateway.ErrClosed
	}
	fresh := make([]UpstreamSession, len(c.upSess))
	for i, old := range c.upSess {
		sess, _, err := up.Attach(old.Name(), old.Token())
		if err != nil {
			return fmt.Errorf("share: reattach session %q: %w", old.Name(), err)
		}
		fresh[i] = sess
	}
	c.up = up
	c.upSess = fresh
	c.stats.Reattaches++
	for _, key := range sortedFragKeys(c.frags) {
		fr := c.frags[key]
		fr.sess = fresh[fr.sessIdx]
		if fr.id == 0 {
			continue // never resolved before the crash
		}
		sub, err := fr.sess.Resume(fr.id, fr.lastSeq)
		if err != nil {
			return fmt.Errorf("share: resume fragment %q: %w", fr.key, err)
		}
		fr.sub = sub
		c.stats.UpstreamResumes++
	}
	return nil
}

// Close tears down every session and fragment. The upstream is left to
// its owner.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return gateway.ErrClosed
	}
	for _, name := range sortedSessionNames(c.sessions) {
		c.applyCloseLocked(c.sessions[name])
	}
	for _, cmd := range c.staged {
		cmd.done <- sres{err: gateway.ErrClosed}
	}
	c.staged = nil
	c.closed = true
	return nil
}

func sortedIDs(m map[gateway.SubID]*Sub) []gateway.SubID {
	ids := make([]gateway.SubID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedFragKeys(m map[string]*fragment) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedTreeKeys(m map[string]*shareTree) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedSessionNames(m map[string]*Session) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
