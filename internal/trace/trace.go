// Package trace records a structured event log of a simulation run — every
// transmission, query lifecycle step and epoch flush — for debugging,
// inspection in the shell, and offline analysis (CSV export).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind classifies trace events.
type Kind string

// Event kinds.
const (
	KindTx      Kind = "tx"      // a transmission put on the air
	KindRetry   Kind = "retry"   // collision/loss retransmission scheduled
	KindInstall Kind = "install" // query installed at a node
	KindAbort   Kind = "abort"   // query aborted at a node
	KindFire    Kind = "fire"    // epoch fired at a node
	KindSleep   Kind = "sleep"   // node entered sleep mode
	KindWake    Kind = "wake"    // node left sleep mode
	KindFail    Kind = "fail"    // node went down
	KindRevive  Kind = "revive"  // node came back up
	KindFlush   Kind = "flush"   // base station closed an epoch window
	KindAdmit   Kind = "admit"   // user query admitted at the base station
	KindCancel  Kind = "cancel"  // user query terminated at the base station
	KindDrop    Kind = "drop"    // result abandoned after reroute exhaustion
)

// Event is one log entry.
type Event struct {
	At     sim.Time
	Kind   Kind
	Node   topology.NodeID
	Detail string
}

// String renders one line.
func (e Event) String() string {
	return fmt.Sprintf("%12s node=%-3d %-8s %s",
		time.Duration(e.At).Round(time.Millisecond), e.Node, e.Kind, e.Detail)
}

// Buffer is a bounded in-memory event log. A zero Max keeps everything.
// The simulation engine serializes all writers; the internal mutex exists
// for readers that cross goroutines (the admin /tracez handler), which
// must use Snapshot rather than Events.
//
// When Max is set, retention is a ring: once full, each Emit overwrites the
// oldest event in O(1) instead of shifting the whole slice.
type Buffer struct {
	// Max bounds retained events; older events are dropped (0 = unbounded).
	Max int
	// Kinds filters recording to the listed kinds (nil = all).
	Kinds []Kind

	mu      sync.Mutex
	events  []Event
	start   int // ring read position: index of the oldest retained event
	dropped int
}

// Emit records an event (subject to the kind filter and size bound).
func (b *Buffer) Emit(e Event) {
	if b == nil {
		return
	}
	if len(b.Kinds) > 0 {
		ok := false
		for _, k := range b.Kinds {
			if k == e.Kind {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.Max > 0 && len(b.events) > b.Max {
		// Max was lowered since the last Emit: linearize and trim to the
		// newest Max events before resuming ring operation.
		ev := b.eventsLocked()
		over := len(ev) - b.Max
		b.events = append([]Event(nil), ev[over:]...)
		b.start = 0
		b.dropped += over
	}
	if b.Max > 0 && len(b.events) == b.Max {
		b.events[b.start] = e
		b.start++
		if b.start == len(b.events) {
			b.start = 0
		}
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Emitf records a formatted event.
func (b *Buffer) Emitf(at sim.Time, kind Kind, node topology.NodeID, format string, args ...any) {
	if b == nil {
		return
	}
	b.Emit(Event{At: at, Kind: kind, Node: node, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the retained events in emission order. While the ring is
// wrapped the result is a fresh slice; mutating it never affects the buffer.
// The result may alias the buffer's storage, so Events is only for readers
// on the engine goroutine — cross-goroutine readers use Snapshot.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.eventsLocked()
}

// eventsLocked is Events without locking; callers hold b.mu.
func (b *Buffer) eventsLocked() []Event {
	if b.start == 0 {
		return b.events
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	return append(out, b.events[:b.start]...)
}

// Snapshot returns a fresh copy of the retained events in emission order.
// Unlike Events, the result never aliases internal storage, so it is safe
// to hold across concurrent Emits — the accessor for readers on other
// goroutines (the admin /tracez handler).
func (b *Buffer) Snapshot() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	return append(out, b.events[:b.start]...)
}

// Dropped returns how many events the size bound discarded.
func (b *Buffer) Dropped() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Len returns the retained event count.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Tail returns the last n events.
func (b *Buffer) Tail(n int) []Event {
	ev := b.Events()
	if n >= len(ev) {
		return ev
	}
	return ev[len(ev)-n:]
}

// CountByKind summarizes the log.
func (b *Buffer) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range b.Events() {
		out[e.Kind]++
	}
	return out
}

// WriteText dumps the log, one event per line.
func (b *Buffer) WriteText(w io.Writer) error {
	for _, e := range b.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the log as CSV (at_ms, kind, node, detail).
func (b *Buffer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ms,kind,node,detail"); err != nil {
		return err
	}
	for _, e := range b.Events() {
		detail := strings.ReplaceAll(e.Detail, `"`, `""`)
		if _, err := fmt.Fprintf(w, "%d,%s,%d,\"%s\"\n",
			time.Duration(e.At)/time.Millisecond, e.Kind, e.Node, detail); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts, sorted by kind.
func (b *Buffer) Summary() string {
	counts := b.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d events", b.Len())
	if b.Dropped() > 0 {
		fmt.Fprintf(&sb, " (+%d dropped)", b.Dropped())
	}
	for _, k := range kinds {
		fmt.Fprintf(&sb, " %s=%d", k, counts[Kind(k)])
	}
	return sb.String()
}
