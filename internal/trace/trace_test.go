package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBufferBasics(t *testing.T) {
	var b Buffer
	b.Emitf(sim.Time(time.Second), KindTx, 3, "result %dB", 20)
	b.Emit(Event{At: sim.Time(2 * time.Second), Kind: KindSleep, Node: 5})
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	if got := b.Events()[0].String(); !strings.Contains(got, "result 20B") || !strings.Contains(got, "node=3") {
		t.Fatalf("event string = %q", got)
	}
	counts := b.CountByKind()
	if counts[KindTx] != 1 || counts[KindSleep] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if s := b.Summary(); !strings.Contains(s, "2 events") {
		t.Fatalf("summary = %q", s)
	}
}

func TestBufferBound(t *testing.T) {
	b := Buffer{Max: 3}
	for i := 0; i < 10; i++ {
		b.Emitf(sim.Time(i)*sim.Time(time.Second), KindTx, 1, "%d", i)
	}
	if b.Len() != 3 || b.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	if b.Events()[0].Detail != "7" {
		t.Fatalf("oldest retained = %q", b.Events()[0].Detail)
	}
	tail := b.Tail(2)
	if len(tail) != 2 || tail[1].Detail != "9" {
		t.Fatalf("tail = %v", tail)
	}
	if got := b.Tail(99); len(got) != 3 {
		t.Fatalf("oversized tail = %d", len(got))
	}
}

// The ring must preserve emission order through many wrap-arounds, at every
// phase offset of the ring's read position.
func TestBufferRingOrdering(t *testing.T) {
	for _, total := range []int{3, 4, 5, 7, 12, 100, 101} {
		b := Buffer{Max: 4}
		for i := 0; i < total; i++ {
			b.Emitf(sim.Time(i), KindTx, 1, "%d", i)
		}
		wantDropped, wantLen, first := total-4, 4, total-4
		if total < 4 {
			wantDropped, wantLen, first = 0, total, 0
		}
		if b.Dropped() != wantDropped {
			t.Fatalf("total=%d: dropped=%d, want %d", total, b.Dropped(), wantDropped)
		}
		ev := b.Events()
		if len(ev) != wantLen {
			t.Fatalf("total=%d: len=%d", total, len(ev))
		}
		for j, e := range ev {
			if e.Detail != fmt.Sprintf("%d", first+j) {
				t.Fatalf("total=%d: events out of order: %v", total, ev)
			}
		}
	}
}

func TestBufferRingMaxLowered(t *testing.T) {
	b := Buffer{Max: 5}
	for i := 0; i < 8; i++ {
		b.Emitf(sim.Time(i), KindTx, 1, "%d", i)
	}
	b.Max = 2
	b.Emitf(sim.Time(8), KindTx, 1, "8")
	ev := b.Events()
	if len(ev) != 2 || ev[0].Detail != "7" || ev[1].Detail != "8" {
		t.Fatalf("after lowering Max: %v", ev)
	}
	// 3 dropped before the shrink, 3 at the shrink, 1 on the shrink's emit.
	if b.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", b.Dropped())
	}
}

// Events() on a wrapped ring returns a copy; mutating it must not corrupt
// the buffer.
func TestBufferEventsCopyWhenWrapped(t *testing.T) {
	b := Buffer{Max: 3}
	for i := 0; i < 5; i++ {
		b.Emitf(sim.Time(i), KindTx, 1, "%d", i)
	}
	ev := b.Events()
	ev[0].Detail = "clobbered"
	if b.Events()[0].Detail != "2" {
		t.Fatal("Events() exposed ring internals")
	}
}

// The bounded emit path must be O(1): the old implementation shifted the
// whole retained slice on every event past Max.
func BenchmarkBufferEmitBounded(b *testing.B) {
	buf := Buffer{Max: 4096}
	e := Event{Kind: KindTx, Node: 1, Detail: "x"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At = sim.Time(i)
		buf.Emit(e)
	}
}

func BenchmarkBufferEmitUnbounded(b *testing.B) {
	buf := Buffer{}
	e := Event{Kind: KindTx, Node: 1, Detail: "x"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At = sim.Time(i)
		buf.Emit(e)
	}
}

func TestBufferKindFilter(t *testing.T) {
	b := Buffer{Kinds: []Kind{KindSleep, KindWake}}
	b.Emitf(0, KindTx, 1, "noise")
	b.Emitf(0, KindSleep, 2, "")
	if b.Len() != 1 || b.Events()[0].Kind != KindSleep {
		t.Fatalf("filter broken: %v", b.Events())
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Emitf(0, KindTx, 1, "x") // must not panic
	b.Emit(Event{})
	if b.Len() != 0 || b.Dropped() != 0 || b.Events() != nil {
		t.Fatal("nil buffer must be inert")
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	var b Buffer
	b.Emitf(sim.Time(1500*time.Millisecond), KindFlush, 0, `q1 "quoted"`)
	var text, csv strings.Builder
	if err := b.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "flush") {
		t.Fatalf("text = %q", text.String())
	}
	if err := b.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.HasPrefix(got, "at_ms,kind,node,detail\n") {
		t.Fatalf("csv header missing: %q", got)
	}
	if !strings.Contains(got, "1500,flush,0,") || !strings.Contains(got, `""quoted""`) {
		t.Fatalf("csv = %q", got)
	}
}

// TestSnapshotConcurrent pins the cross-goroutine contract: Snapshot (the
// /tracez read path) may run while the engine goroutine emits. Run under
// -race this fails if Buffer's internal locking regresses.
func TestSnapshotConcurrent(t *testing.T) {
	b := &Buffer{Max: 64}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			b.Emitf(sim.Time(i), KindTx, 1, "msg %d", i)
		}
	}()
	for i := 0; i < 200; i++ {
		snap := b.Snapshot()
		for j := 1; j < len(snap); j++ {
			if snap[j].At < snap[j-1].At {
				t.Fatalf("snapshot out of order at %d: %v < %v", j, snap[j].At, snap[j-1].At)
			}
		}
		b.Len()
		b.Dropped()
	}
	<-done
	if b.Len() != 64 {
		t.Fatalf("len = %d, want 64", b.Len())
	}
	snap := b.Snapshot()
	snap[0].Detail = "mutated"
	if b.Snapshot()[0].Detail == "mutated" {
		t.Fatal("Snapshot aliases internal storage")
	}
}
