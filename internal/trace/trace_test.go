package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBufferBasics(t *testing.T) {
	var b Buffer
	b.Emitf(sim.Time(time.Second), KindTx, 3, "result %dB", 20)
	b.Emit(Event{At: sim.Time(2 * time.Second), Kind: KindSleep, Node: 5})
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	if got := b.Events()[0].String(); !strings.Contains(got, "result 20B") || !strings.Contains(got, "node=3") {
		t.Fatalf("event string = %q", got)
	}
	counts := b.CountByKind()
	if counts[KindTx] != 1 || counts[KindSleep] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if s := b.Summary(); !strings.Contains(s, "2 events") {
		t.Fatalf("summary = %q", s)
	}
}

func TestBufferBound(t *testing.T) {
	b := Buffer{Max: 3}
	for i := 0; i < 10; i++ {
		b.Emitf(sim.Time(i)*sim.Time(time.Second), KindTx, 1, "%d", i)
	}
	if b.Len() != 3 || b.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	if b.Events()[0].Detail != "7" {
		t.Fatalf("oldest retained = %q", b.Events()[0].Detail)
	}
	tail := b.Tail(2)
	if len(tail) != 2 || tail[1].Detail != "9" {
		t.Fatalf("tail = %v", tail)
	}
	if got := b.Tail(99); len(got) != 3 {
		t.Fatalf("oversized tail = %d", len(got))
	}
}

func TestBufferKindFilter(t *testing.T) {
	b := Buffer{Kinds: []Kind{KindSleep, KindWake}}
	b.Emitf(0, KindTx, 1, "noise")
	b.Emitf(0, KindSleep, 2, "")
	if b.Len() != 1 || b.Events()[0].Kind != KindSleep {
		t.Fatalf("filter broken: %v", b.Events())
	}
}

func TestNilBufferSafe(t *testing.T) {
	var b *Buffer
	b.Emitf(0, KindTx, 1, "x") // must not panic
	b.Emit(Event{})
	if b.Len() != 0 || b.Dropped() != 0 || b.Events() != nil {
		t.Fatal("nil buffer must be inert")
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	var b Buffer
	b.Emitf(sim.Time(1500*time.Millisecond), KindFlush, 0, `q1 "quoted"`)
	var text, csv strings.Builder
	if err := b.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "flush") {
		t.Fatalf("text = %q", text.String())
	}
	if err := b.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.HasPrefix(got, "at_ms,kind,node,detail\n") {
		t.Fatalf("csv header missing: %q", got)
	}
	if !strings.Contains(got, "1500,flush,0,") || !strings.Contains(got, `""quoted""`) {
		t.Fatalf("csv = %q", got)
	}
}
