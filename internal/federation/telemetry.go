package federation

import (
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// MergeLatencyBounds are the router merge-latency histogram's bucket
// bounds in (wall-clock) seconds: one observation per Advance covering
// upstream drain, recombination and downstream release.
var MergeLatencyBounds = []float64{
	50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 100e-3,
}

// RegisterMetrics mounts the federation tier's metric families on r and
// installs a gather hook that syncs them before every exposition. Router
// counters mirror through monotonic Set (the same contract as the
// gateway families); per-shard families carry a "shard" label. The merge
// latency histogram is fed live via the router's merge observer, so it
// accumulates between scrapes.
func RegisterMetrics(r *telemetry.Registry, current func() *Router) {
	routerUp := r.NewGauge("ttmqo_router_up", "1 while the federation router is serving")
	aliveShards := r.NewGauge("ttmqo_router_alive_shards", "shards whose gateway actor loop is up")
	trees := r.NewGauge("ttmqo_router_query_trees", "live canonical cross-shard queries")
	upstreamSubs := r.NewGauge("ttmqo_router_upstream_subscriptions", "live canonical upstream subscriptions across shards")

	type cf struct {
		fam *telemetry.Family
		get func(Stats) int64
	}
	counters := []cf{
		{r.NewCounter("ttmqo_router_sessions_total", "downstream sessions registered"), func(s Stats) int64 { return s.Sessions }},
		{r.NewCounter("ttmqo_router_subscribes_total", "downstream subscriptions accepted"), func(s Stats) int64 { return s.Subscribes }},
		{r.NewCounter("ttmqo_router_dedup_hits_total", "subscriptions coalesced onto an existing query tree"), func(s Stats) int64 { return s.DedupHits }},
		{r.NewCounter("ttmqo_router_partial_updates_total", "per-shard partial updates drained"), func(s Stats) int64 { return s.PartialUpdates }},
		{r.NewCounter("ttmqo_router_merged_epochs_total", "epochs released by the watermark"), func(s Stats) int64 { return s.MergedEpochs }},
		{r.NewCounter("ttmqo_router_updates_total", "merged updates delivered downstream"), func(s Stats) int64 { return s.Updates }},
		{r.NewCounter("ttmqo_router_forced_releases_total", "epochs released early by the pending bound"), func(s Stats) int64 { return s.ForcedReleases }},
		{r.NewCounter("ttmqo_router_late_dropped_total", "partials that arrived for an already-released epoch"), func(s Stats) int64 { return s.LateDropped }},
		{r.NewCounter("ttmqo_router_evicted_total", "downstream subscribers dropped on overflow"), func(s Stats) int64 { return s.Evicted }},
		{r.NewCounter("ttmqo_shard_crashes_total", "shard gateways crashed"), func(s Stats) int64 { return s.ShardCrashes }},
		{r.NewCounter("ttmqo_shard_recoveries_total", "shard gateways rebuilt by WAL replay"), func(s Stats) int64 { return s.ShardRecoveries }},
		{r.NewCounter("ttmqo_shard_partitions_total", "router-shard partitions injected"), func(s Stats) int64 { return s.Partitions }},
		{r.NewCounter("ttmqo_shard_heals_total", "router-shard partitions healed"), func(s Stats) int64 { return s.Heals }},
		{r.NewCounter("ttmqo_router_upstream_resumes_total", "upstream streams resumed after recover/heal"), func(s Stats) int64 { return s.UpstreamResumes }},
		{r.NewCounter("ttmqo_resilience_breaker_trips_total", "per-shard circuit breakers tripped open on consecutive stuck rounds"), func(s Stats) int64 { return s.BreakerTrips }},
		{r.NewCounter("ttmqo_resilience_breaker_probes_total", "half-open probes issued after breaker cooldowns"), func(s Stats) int64 { return s.BreakerProbes }},
		{r.NewCounter("ttmqo_resilience_breaker_recoveries_total", "breakers closed again after a successful probe"), func(s Stats) int64 { return s.BreakerRecoveries }},
		{r.NewCounter("ttmqo_resilience_degraded_epochs_total", "epochs released without full shard coverage"), func(s Stats) int64 { return s.DegradedEpochs }},
		{r.NewCounter("ttmqo_resilience_shard_stalls_total", "stuck-shard injections (StallShard)"), func(s Stats) int64 { return s.ShardStalls }},
		{r.NewCounter("ttmqo_resilience_router_shed_deadline_total", "downstream subscribes shed: router mailbox sojourn exceeded the budget"), func(s Stats) int64 { return s.ShedDeadline }},
	}

	shardUp := r.NewGauge("ttmqo_shard_up", "1 while the shard's gateway actor loop is up", "shard")
	shardVTime := r.NewGauge("ttmqo_shard_virtual_time_seconds", "the shard's elapsed virtual time", "shard")
	shardUpdates := r.NewCounter("ttmqo_shard_updates_total", "result deliveries fanned out by the shard gateway", "shard")
	shardEpochs := r.NewCounter("ttmqo_shard_epochs_total", "result epochs produced by the shard simulation", "shard")
	shardUpstreams := r.NewGauge("ttmqo_shard_upstream_subscriptions", "canonical upstream subscriptions held on the shard", "shard")
	breakerState := r.NewGauge("ttmqo_resilience_breaker_state", "shard circuit-breaker state: 0 closed, 1 open, 2 half-open", "shard")
	stalledShards := r.NewGauge("ttmqo_resilience_stalled_shards", "shards currently wedged by a stuck-shard injection")

	mergeHist := r.NewHistogram("ttmqo_router_merge_latency_seconds",
		"wall-clock time per Advance spent draining, recombining and releasing partial results", MergeLatencyBounds)
	observe := func(d time.Duration) { mergeHist.Histogram().Observe(d.Seconds()) }
	if rt := current(); rt != nil {
		rt.SetMergeObserver(observe)
	}

	r.OnGather(func() {
		rt := current()
		if rt == nil {
			return
		}
		rt.SetMergeObserver(observe)
		if rt.Alive() {
			routerUp.Gauge().Set(1)
		} else {
			routerUp.Gauge().Set(0)
		}
		st := rt.FedStats()
		aliveShards.Gauge().Set(float64(st.AliveShards))
		trees.Gauge().Set(float64(st.Trees))
		upstreamSubs.Gauge().Set(float64(st.UpstreamSubs))
		stalledShards.Gauge().Set(float64(st.StalledShards))
		for _, c := range counters {
			c.fam.Counter().Set(float64(c.get(st)))
		}
		for i := 0; i < rt.Shards(); i++ {
			label := strconv.Itoa(i)
			if rt.ShardAlive(i) {
				shardUp.Gauge(label).Set(1)
			} else {
				shardUp.Gauge(label).Set(0)
			}
			breakerState.Gauge(label).Set(float64(rt.ShardBreaker(i)))
			shardVTime.Gauge(label).Set(time.Duration(rt.ShardNow(i)).Seconds())
			shardUpstreams.Gauge(label).Set(float64(rt.UpstreamSubsOn(i)))
			gst, err := rt.ShardStats(i)
			if err != nil {
				continue
			}
			shardUpdates.Counter(label).Set(float64(gst.Updates))
			shardEpochs.Counter(label).Set(float64(gst.Epochs))
		}
	})
}
