package federation

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The planner splits one downstream query into per-shard upstream queries
// and describes how to recombine their partial results.
//
// Region model: shard s simulates its own PaperGrid whose sensors carry
// local ids 1..spn (node 0 is the shard's base station and never samples).
// Globally the field is the concatenation of the shards, so shard s owns
// global sensor ids [s*spn+1, (s+1)*spn]. A query's nodeid predicate is
// expressed in global ids; the planner intersects it with each shard's
// slice and rewrites it into local coordinates, dropping the shards it
// misses entirely. Result rows travel back in local ids and are translated
// to global ones at the merge.
//
// Aggregates: AggResult carries only final values, so AVG is not
// recombinable from AVG partials. The planner rewrites each downstream
// AVG(x) into upstream SUM(x)+COUNT(x) (deduplicated against explicit
// SUMs/COUNTs) and the merger recombines: SUM and COUNT add, MIN/MAX fold,
// AVG = ΣSUM/ΣCOUNT. nodeid itself cannot be aggregated or grouped across
// shards (local ids would recombine into nonsense), so the planner rejects
// those queries up front.

// shardSlice is one shard's view of a planned query.
type shardSlice struct {
	shard int
	q     query.Query // upstream query, nodeid predicate in local coordinates
}

// avgSource names the upstream aggregates a downstream AVG recombines from.
type avgSource struct {
	sum query.Agg // SUM(attr)
	cnt query.Agg // COUNT(attr)
}

// plan is the routing decision for one canonical downstream query.
type plan struct {
	q      query.Query  // normalized downstream query
	agg    bool         // aggregation (recombine) vs acquisition (concatenate)
	slices []shardSlice // intersecting shards, ascending shard index
	// avg maps a downstream AVG agg to its upstream SUM/COUNT pair.
	avg map[query.Agg]avgSource
}

// shards returns the planned shard indices.
func (p *plan) shardSet() []int {
	out := make([]int, len(p.slices))
	for i, s := range p.slices {
		out[i] = s.shard
	}
	return out
}

// planQuery splits q across K shards of spn sensors each.
func planQuery(q query.Query, shards, spn int) (*plan, error) {
	n := q.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.GroupBy != nil && n.GroupBy.Attr == field.AttrNodeID {
		return nil, fmt.Errorf("federation: GROUP BY nodeid is not federatable (shard-local ids)")
	}
	for _, a := range n.Aggs {
		if a.Attr == field.AttrNodeID {
			return nil, fmt.Errorf("federation: %s(nodeid) is not federatable (shard-local ids)", a.Op)
		}
	}
	for _, w := range n.Wins {
		if w.Attr == field.AttrNodeID {
			return nil, fmt.Errorf("federation: windowed nodeid is not federatable (shard-local ids)")
		}
	}

	p := &plan{q: n, agg: n.IsAggregation()}

	// Rewrite the aggregate list for recombination.
	upAggs := n.Aggs
	if p.agg {
		upAggs = make([]query.Agg, 0, len(n.Aggs)+2)
		seen := make(map[query.Agg]bool, len(n.Aggs)+2)
		add := func(a query.Agg) {
			if !seen[a] {
				seen[a] = true
				upAggs = append(upAggs, a)
			}
		}
		for _, a := range n.Aggs {
			if a.Op != query.Avg {
				add(a)
				continue
			}
			src := avgSource{
				sum: query.Agg{Op: query.Sum, Attr: a.Attr},
				cnt: query.Agg{Op: query.Count, Attr: a.Attr},
			}
			add(src.sum)
			add(src.cnt)
			if p.avg == nil {
				p.avg = make(map[query.Agg]avgSource, 1)
			}
			p.avg[a] = src
		}
	}

	// Intersect the nodeid predicate (global ids) with each shard's slice.
	pred, hasPred := n.PredFor(field.AttrNodeID)
	for s := 0; s < shards; s++ {
		base := float64(s * spn)
		lo, hi := 1.0, float64(spn) // the shard's full local sensor range
		if hasPred {
			lo = math.Max(lo, pred.Min-base)
			hi = math.Min(hi, pred.Max-base)
			if lo > hi {
				continue // the query's region misses this shard
			}
		}
		uq := n.Clone()
		uq.Aggs = append([]query.Agg(nil), upAggs...)
		uq.Lifetime = 0 // lifecycle is managed at the router
		// Swap the global nodeid range for the local one; drop it entirely
		// when it covers the whole shard so equal-coverage queries dedup to
		// one canonical upstream form.
		preds := uq.Preds[:0]
		for _, pr := range uq.Preds {
			if pr.Attr != field.AttrNodeID {
				preds = append(preds, pr)
			}
		}
		if lo > 1 || hi < float64(spn) {
			preds = append(preds, query.Predicate{Attr: field.AttrNodeID, Min: lo, Max: hi})
		}
		uq.Preds = preds
		p.slices = append(p.slices, shardSlice{shard: s, q: uq.Normalize()})
	}
	if len(p.slices) == 0 {
		return nil, fmt.Errorf("federation: nodeid predicate %s selects no shard (global sensors are 1..%d)",
			pred.String(), shards*spn)
	}
	return p, nil
}

// translateRows maps one shard's result rows into global coordinates,
// appending to dst. Both the row's node id and a projected nodeid value
// shift by the shard's base offset.
func translateRows(dst []query.Row, rows []query.Row, shard, spn int) []query.Row {
	base := shard * spn
	for _, r := range rows {
		g := r
		g.Node = r.Node + topology.NodeID(base)
		if v, ok := r.Values[field.AttrNodeID]; ok {
			vals := make(map[field.Attr]float64, len(r.Values))
			for k, val := range r.Values {
				vals[k] = val
			}
			vals[field.AttrNodeID] = v + float64(base)
			g.Values = vals
		}
		dst = append(dst, g)
	}
	return dst
}

// aggKey identifies one partial-aggregate accumulator within an epoch.
type aggKey struct {
	agg   query.Agg
	group int64
}

// partial folds per-shard aggregate results of one (agg, group, epoch).
type partial struct {
	sum   float64 // SUM/COUNT accumulate here
	min   float64
	max   float64
	count int64 // contributing non-empty partials
}

// epochAcc accumulates one virtual instant's partial results across shards
// until the watermark releases it.
type epochAcc struct {
	at   sim.Time
	rows []query.Row         // translated acquisition/window rows, shard order
	aggs map[aggKey]*partial // aggregation partials
	ord  []aggKey            // insertion order, for deterministic iteration
}

func newEpochAcc(at sim.Time) *epochAcc {
	return &epochAcc{at: at}
}

// addAggs folds one shard's aggregate results into the accumulator.
func (e *epochAcc) addAggs(results []query.AggResult) {
	if e.aggs == nil {
		e.aggs = make(map[aggKey]*partial, len(results))
	}
	for _, r := range results {
		k := aggKey{agg: r.Agg, group: r.Group}
		p, ok := e.aggs[k]
		if !ok {
			p = &partial{min: math.Inf(1), max: math.Inf(-1)}
			e.aggs[k] = p
			e.ord = append(e.ord, k)
		}
		if r.Empty {
			continue
		}
		p.count++
		p.sum += r.Value
		p.min = math.Min(p.min, r.Value)
		p.max = math.Max(p.max, r.Value)
	}
}

// finish recombines the accumulated partials into the downstream query's
// aggregate list, deterministically ordered by (agg position, group).
func (e *epochAcc) finish(p *plan) []query.AggResult {
	if !p.agg {
		return nil
	}
	// Collect the group buckets present in any partial.
	groupSet := make(map[int64]bool, 4)
	for _, k := range e.ord {
		groupSet[k.group] = true
	}
	groups := make([]int64, 0, len(groupSet))
	for g := range groupSet {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })

	out := make([]query.AggResult, 0, len(p.q.Aggs)*len(groups))
	for _, a := range p.q.Aggs {
		for _, g := range groups {
			r := query.AggResult{Time: e.at, Agg: a, Group: g}
			if src, ok := p.avg[a]; ok {
				sum, sok := e.lookup(src.sum, g)
				cnt, cok := e.lookup(src.cnt, g)
				if !sok || !cok || cnt.count == 0 || cnt.sum == 0 {
					r.Empty = true
				} else {
					r.Value = sum.sum / cnt.sum
				}
				out = append(out, r)
				continue
			}
			pt, ok := e.lookup(a, g)
			if !ok || pt.count == 0 {
				r.Empty = true
				out = append(out, r)
				continue
			}
			switch a.Op {
			case query.Sum, query.Count:
				r.Value = pt.sum
			case query.Min:
				r.Value = pt.min
			case query.Max:
				r.Value = pt.max
			}
			out = append(out, r)
		}
	}
	return out
}

func (e *epochAcc) lookup(a query.Agg, group int64) (*partial, bool) {
	p, ok := e.aggs[aggKey{agg: a, group: group}]
	return p, ok
}
