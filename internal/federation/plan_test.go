package federation

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Two shards of three sensors each: shard 0 owns global ids 1..3, shard 1
// owns 4..6.
const (
	testShards = 2
	testSPN    = 3
)

func mustPlan(t *testing.T, text string) *plan {
	t.Helper()
	p, err := planQuery(query.MustParse(text), testShards, testSPN)
	if err != nil {
		t.Fatalf("planQuery(%q): %v", text, err)
	}
	return p
}

func TestPlanSplitsNodeIDPredicate(t *testing.T) {
	// Global ids 2..5 intersect both shards: local 2..3 on shard 0,
	// local 1..2 on shard 1.
	p := mustPlan(t, "SELECT light WHERE nodeid >= 2 AND nodeid <= 5 EPOCH DURATION 8192ms")
	if got := p.shardSet(); len(got) != 2 {
		t.Fatalf("planned shards = %v, want both", got)
	}
	want := [][2]float64{{2, 3}, {1, 2}}
	for i, sl := range p.slices {
		pred, ok := sl.q.PredFor(field.AttrNodeID)
		if !ok {
			t.Fatalf("slice %d lost its nodeid predicate", i)
		}
		if pred.Min != want[i][0] || pred.Max != want[i][1] {
			t.Fatalf("slice %d local range = [%g, %g], want %v", i, pred.Min, pred.Max, want[i])
		}
	}
}

func TestPlanDropsShardAndCoveringPredicate(t *testing.T) {
	// Global ids 4..6 are exactly shard 1; the local predicate covers the
	// whole shard so it is dropped for canonical dedup.
	p := mustPlan(t, "SELECT light WHERE nodeid >= 4 EPOCH DURATION 8192ms")
	if got := p.shardSet(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("planned shards = %v, want [1]", got)
	}
	if _, ok := p.slices[0].q.PredFor(field.AttrNodeID); ok {
		t.Fatal("covering local predicate not dropped")
	}
	// And the slice must equal the unpredicated whole-shard slice.
	full := mustPlan(t, "SELECT light EPOCH DURATION 8192ms")
	if p.slices[0].q.String() != full.slices[1].q.String() {
		t.Fatalf("covering slice %q != full-range slice %q",
			p.slices[0].q.String(), full.slices[1].q.String())
	}
}

func TestPlanRejectsOutOfRangeAndNodeIDAggs(t *testing.T) {
	if _, err := planQuery(query.MustParse("SELECT light WHERE nodeid > 6 EPOCH DURATION 8192ms"), testShards, testSPN); err == nil {
		t.Fatal("predicate past the last shard must not plan")
	}
	for _, text := range []string{
		"SELECT MAX(nodeid) EPOCH DURATION 8192ms",
		"SELECT AVG(light) GROUP BY nodeid EPOCH DURATION 8192ms",
	} {
		if _, err := planQuery(query.MustParse(text), testShards, testSPN); err == nil {
			t.Fatalf("%q must be rejected (shard-local ids)", text)
		}
	}
}

func TestPlanRewritesAvg(t *testing.T) {
	p := mustPlan(t, "SELECT AVG(light), SUM(light) EPOCH DURATION 8192ms")
	up := p.slices[0].q.Aggs
	// Upstream: SUM(light) (shared by AVG rewrite and the explicit SUM)
	// and COUNT(light); no AVG.
	if len(up) != 2 {
		t.Fatalf("upstream aggs = %v, want SUM+COUNT", up)
	}
	for _, a := range up {
		if a.Op == query.Avg {
			t.Fatalf("upstream still carries AVG: %v", up)
		}
	}
	if len(p.avg) != 1 {
		t.Fatalf("avg sources = %d, want 1", len(p.avg))
	}
}

func TestEpochAccRecombines(t *testing.T) {
	p := mustPlan(t, "SELECT AVG(light), MIN(light), MAX(light), COUNT(light) EPOCH DURATION 8192ms")
	light := p.q.Aggs[0].Attr
	sum := query.Agg{Op: query.Sum, Attr: light}
	cnt := query.Agg{Op: query.Count, Attr: light}
	mn := query.Agg{Op: query.Min, Attr: light}
	mx := query.Agg{Op: query.Max, Attr: light}

	at := sim.Time(8192e6)
	acc := newEpochAcc(at)
	// Shard 0: sum 30 over 3 readings, min 5, max 15.
	acc.addAggs([]query.AggResult{
		{Time: at, Agg: sum, Value: 30}, {Time: at, Agg: cnt, Value: 3},
		{Time: at, Agg: mn, Value: 5}, {Time: at, Agg: mx, Value: 15},
	})
	// Shard 1: sum 50 over 2 readings, min 20, max 30.
	acc.addAggs([]query.AggResult{
		{Time: at, Agg: sum, Value: 50}, {Time: at, Agg: cnt, Value: 2},
		{Time: at, Agg: mn, Value: 20}, {Time: at, Agg: mx, Value: 30},
	})

	out := acc.finish(p)
	if len(out) != 4 {
		t.Fatalf("finish returned %d results, want 4", len(out))
	}
	wantByOp := map[query.AggOp]float64{
		query.Avg: 80.0 / 5.0, query.Min: 5, query.Max: 30, query.Count: 5,
	}
	for _, r := range out {
		if r.Empty {
			t.Fatalf("%v unexpectedly empty", r.Agg)
		}
		if want := wantByOp[r.Agg.Op]; math.Abs(r.Value-want) > 1e-9 {
			t.Fatalf("%v = %g, want %g", r.Agg, r.Value, want)
		}
		if r.Time != at {
			t.Fatalf("%v at %v, want %v", r.Agg, r.Time, at)
		}
	}
}

func TestEpochAccEmptyPartials(t *testing.T) {
	p := mustPlan(t, "SELECT AVG(light) EPOCH DURATION 8192ms")
	light := p.q.Aggs[0].Attr
	sum := query.Agg{Op: query.Sum, Attr: light}
	cnt := query.Agg{Op: query.Count, Attr: light}

	acc := newEpochAcc(0)
	acc.addAggs([]query.AggResult{
		{Agg: sum, Empty: true}, {Agg: cnt, Empty: true},
	})
	out := acc.finish(p)
	if len(out) != 1 || !out[0].Empty {
		t.Fatalf("all-empty partials must recombine to one empty AVG, got %v", out)
	}

	// COUNT=0 from every shard also yields an empty AVG (no division).
	acc2 := newEpochAcc(0)
	acc2.addAggs([]query.AggResult{
		{Agg: sum, Value: 0}, {Agg: cnt, Value: 0},
	})
	out2 := acc2.finish(p)
	if len(out2) != 1 || !out2[0].Empty {
		t.Fatalf("zero-count AVG must be empty, got %v", out2)
	}
}

func TestTranslateRows(t *testing.T) {
	rows := []query.Row{
		{Node: 2, Values: map[field.Attr]float64{field.AttrNodeID: 2}},
		{Node: 3, Values: map[field.Attr]float64{field.AttrNodeID: 3}},
	}
	out := translateRows(nil, rows, 1, testSPN)
	if out[0].Node != topology.NodeID(5) || out[1].Node != topology.NodeID(6) {
		t.Fatalf("shard-1 nodes = %d, %d, want 5, 6", out[0].Node, out[1].Node)
	}
	if out[0].Values[field.AttrNodeID] != 5 || out[1].Values[field.AttrNodeID] != 6 {
		t.Fatalf("projected nodeid not translated: %v", out)
	}
	// The source rows must be untouched (maps are copied on write).
	if rows[0].Values[field.AttrNodeID] != 2 {
		t.Fatal("translateRows mutated its input")
	}
}
