package federation

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/tracing"
)

// Defaults for Config zero values.
const (
	DefaultShards     = 1
	DefaultSide       = 4
	DefaultMaxPending = 256
	// defaultCatchUpStep bounds one recovery replay advance when the router
	// has never advanced (so no quantum is known yet).
	defaultCatchUpStep = 2048 * time.Millisecond
)

// Config parametrizes a Router and its shard fleet.
type Config struct {
	// Shards is the number of region partitions K (DefaultShards if <= 0).
	Shards int
	// Side is each shard's PaperGrid side; a shard simulates Side*Side
	// nodes of which Side*Side-1 are sensors (DefaultSide if <= 0).
	Side int
	// Seed drives shard i's simulation with Seed+i, so shards model
	// distinct regions of one field.
	Seed int64
	// Scheme selects the optimization tiers (network.TTMQO if zero).
	Scheme network.Scheme
	// Alpha is the tier-1 termination parameter (scheme default if 0).
	Alpha float64
	// Buffer, MaxSessions, SessionQuota, Rate, Burst mirror the gateway
	// limits. Buffer bounds both the per-shard upstream channels and the
	// downstream subscriber channels; MaxSessions and SessionQuota are
	// enforced at the router (shards see only the router's own sessions).
	Buffer       int
	MaxSessions  int
	SessionQuota int
	Rate         float64
	Burst        float64
	// WALDir, when set, gives every shard a write-ahead log
	// (<WALDir>/shard-<i>.wal) so a crashed shard can be rebuilt with
	// RecoverShard. Empty disables crash recovery.
	WALDir string
	// Replicas is the virtual-point count per shard on the session hash
	// ring (DefaultReplicas if <= 0).
	Replicas int
	// MaxPending bounds buffered epochs per query tree while a watermark
	// stalls (dead or partitioned shard). Overflow force-releases the
	// oldest epochs without the missing shard's partials
	// (DefaultMaxPending if <= 0).
	MaxPending int
	// Failures injects node outages into every shard's simulation (zero
	// value disables them).
	Failures network.FailureConfig
	// OnShardSim, when set, runs against each shard's freshly built
	// simulation (chaos fault injection); re-applied on recovery replay.
	OnShardSim func(shard int, s *network.Simulation)
	// MailboxDeadline is the default staging-sojourn budget for downstream
	// subscribes: a command that waits longer than this in the router's
	// group-commit mailbox is shed with resilience.ErrOverloaded instead of
	// being applied late. Zero disables the default; a per-command budget
	// (SubscribeAsyncBudget / wire deadline_ms) always overrides.
	MailboxDeadline time.Duration
	// MaxStaged and MaxLiveSubs forward the gateway admission-control
	// bounds to every shard (zero disables, as on the gateway). Shard-side
	// brownout pressure also feeds the router's BrownoutLevel.
	MaxStaged   int
	MaxLiveSubs int
	// Breaker parametrizes the per-shard circuit breaker guarding the
	// watermark against stuck-but-not-crashed shards (zero value uses the
	// resilience defaults).
	Breaker resilience.BreakerConfig
	// Tracer, when set, records the router's causal spans (subscribe,
	// shard fan-out, merge/degraded releases, breaker transitions,
	// reattaches) into a caller-owned flight recorder; nil disables
	// tracing at this tier.
	Tracer *tracing.Recorder
	// ShardTracer, when set, supplies shard i's gateway flight recorder.
	// Caller-owned recorders survive shard crashes, so a recovered shard
	// keeps appending to the same ring its predecessor used.
	ShardTracer func(shard int) *tracing.Recorder
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.Side <= 0 {
		c.Side = DefaultSide
	}
	if c.Scheme == 0 {
		c.Scheme = network.TTMQO
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = gateway.DefaultMaxSessions
	}
	if c.SessionQuota <= 0 {
		c.SessionQuota = gateway.DefaultSessionQuota
	}
	if c.Buffer <= 0 {
		c.Buffer = gateway.DefaultBuffer
	}
	if c.MaxPending <= 0 {
		c.MaxPending = DefaultMaxPending
	}
	return c
}

// Stats is the router's own counter snapshot (shard gateway counters are
// separate; see ShardStats and ServeStats).
type Stats struct {
	Shards              int
	AliveShards         int
	Sessions            int64 // registrations ever accepted
	ActiveSessions      int
	Subscribes          int64
	Unsubscribes        int64
	DedupHits           int64 // subscribes coalesced onto an existing tree
	ActiveSubscriptions int
	Trees               int   // live canonical cross-shard queries
	UpstreamSubs        int   // live upstream subscriptions across shards
	PartialUpdates      int64 // upstream updates drained from shards
	Updates             int64 // merged updates delivered downstream
	MergedEpochs        int64 // epochs released by the watermark
	ForcedReleases      int64 // epochs released early by MaxPending overflow
	LateDropped         int64 // partials that arrived for an already-released epoch
	Evicted             int64 // downstream subscribers dropped on overflow
	RingDropped         int64 // detached-subscriber updates dropped by ring bound
	ShardCrashes        int64
	ShardRecoveries     int64
	Partitions          int64
	Heals               int64
	UpstreamResumes     int64 // upstream streams resumed after recover/heal
	ShedDeadline        int64 // subscribes shed: mailbox sojourn exceeded the budget
	DegradedEpochs      int64 // epochs released without full shard coverage
	ShardStalls         int64 // StallShard(i, true) calls (chaos stuck-shard injections)
	StalledShards       int   // shards currently wedged by StallShard
	BreakerTrips        int64 // per-shard breakers tripped open (summed)
	BreakerProbes       int64 // half-open probes issued (summed)
	BreakerRecoveries   int64 // breakers closed again after a probe succeeded (summed)
}

// upstream is the router's one canonical subscription to a shard for a
// query tree.
type upstream struct {
	sh      *shard
	tr      *tree
	slice   int // index into tr.plan.slices
	sub     *gateway.Subscription
	id      gateway.SubID
	lastSeq uint64
}

// shard is one region partition: a simulation behind its own gateway,
// plus the router's upstream session on it.
type shard struct {
	idx  int
	cfg  gateway.Config
	gw   *gateway.Gateway
	name string // the router's upstream session name
	// token survives crashes: gateway.Recover replays the WAL, so the
	// original session token re-attaches to the rebuilt gateway.
	token string
	sess  *gateway.Session
	ups   map[gateway.SubID]*upstream
	// alive: the gateway process is up. reachable: the router's upstream
	// session is attached (false during a simulated network partition —
	// the shard keeps advancing, its updates park in resume rings).
	alive     bool
	reachable bool
	vnow      sim.Time // the shard's virtual clock
	// frozen is the watermark contribution while !alive || !reachable:
	// the last virtual instant whose updates the router has seen.
	frozen sim.Time
	// stalled simulates a wedged-but-running gateway (StallShard): the
	// shard stops answering Advance without crashing. brk observes every
	// round's outcome; once it trips open the shard's frozen clock stops
	// gating the watermark and spanned trees release degraded epochs
	// instead of stalling.
	stalled bool
	brk     *resilience.Breaker
}

// watermark is the virtual instant this shard's partials are complete
// strictly below, from the router's point of view. Completeness is
// exclusive: an epoch scheduled exactly at the clock's current value can
// still surface in the next quantum, so only epochs with At < watermark
// may release.
func (sh *shard) watermark() sim.Time {
	if sh.alive && sh.reachable {
		return sh.vnow
	}
	return sh.frozen
}

// tree is one canonical downstream query: its plan, its per-shard
// upstream subscriptions and its downstream subscribers.
type tree struct {
	key  string
	p    *plan
	qid  query.ID    // representative upstream query id (first slice's)
	ups  []*upstream // parallel to p.slices
	subs []*Sub      // ascending SubID
	// pending buffers partially merged epochs until the watermark (min
	// over planned shards) passes them.
	pending  map[sim.Time]*epochAcc
	released sim.Time // newest released epoch instant
	broken   error    // set when upstream establishment failed
	// trace/spanID are the materializing subscriber's causal context: a
	// shared tree's fan-out and release spans belong to the trace that
	// first established it (later subscribers get dedup-hit spans on
	// their own traces).
	trace  uint64
	spanID uint64
}

func (t *tree) acc(at sim.Time) *epochAcc {
	a := t.pending[at]
	if a == nil {
		a = newEpochAcc(at)
		if t.pending == nil {
			t.pending = make(map[sim.Time]*epochAcc, 4)
		}
		t.pending[at] = a
	}
	return a
}

// rcmd is a staged downstream command, committed in deterministic order
// at the next Advance (mirroring the gateway's group-commit mailbox).
type rcmd struct {
	kind rcmdKind
	sess *Session
	seq  uint64      // per-session staging order
	q    query.Query // subscribe
	id   gateway.SubID
	done chan rres
	// at/deadline implement the mailbox sojourn budget: at is stamped when
	// the command is staged, and a subscribe still uncommitted after
	// deadline (or Config.MailboxDeadline when zero) is shed at commit.
	at       time.Time
	deadline time.Duration
	// trace is the subscriber-propagated causal context (zero derives one
	// at commit when tracing is enabled).
	trace tracing.Context
}

// remainingBudget is the unspent part of the staging deadline, forwarded
// to the shard gateways' mailboxes so one budget spans the whole
// router→shard chain.
func (c *rcmd) remainingBudget() time.Duration {
	if c.deadline <= 0 || c.at.IsZero() {
		return 0
	}
	rem := c.deadline - time.Since(c.at)
	if rem < 0 {
		return 0
	}
	return rem
}

type rcmdKind uint8

const (
	cmdSubscribe rcmdKind = iota
	cmdUnsubscribe
	cmdClose
)

type rres struct {
	sub *Sub
	err error
}

// Ticket resolves a staged router command at the next Advance.
type Ticket struct {
	r    *Router
	done chan rres
}

// Wait blocks until the command commits (the next Advance) or the router
// closes.
func (t *Ticket) Wait() (*Sub, error) {
	select {
	case res := <-t.done:
		return res.sub, res.err
	case <-t.r.done:
		select {
		case res := <-t.done:
			return res.sub, res.err
		default:
			return nil, gateway.ErrClosed
		}
	}
}

// pendingUp is an upstream subscription staged on a shard this round,
// resolved after the shard advances.
type pendingUp struct {
	up *upstream
	tk *gateway.Ticket
}

// pendingAck is a downstream subscribe reply held until its tree's
// upstreams resolve.
type pendingAck struct {
	c   *rcmd
	sub *Sub
	tr  *tree
}

// Router fronts K gateway shards behind the gateway.Backend surface:
// sessions consistent-hash to home shards, cross-shard queries are
// planned into per-shard slices with one canonical upstream subscription
// each, and partial results merge under a per-tree watermark so
// downstream updates stay in virtual-time order even when a shard dies
// or partitions.
type Router struct {
	cfg  Config
	ring *ring
	spn  int // sensors per shard

	done chan struct{} // closed on Close; unblocks ticket waiters

	mu         sync.Mutex
	shards     []*shard
	sessions   map[string]*Session
	trees      map[string]*tree
	staged     []*rcmd
	pendingUps []pendingUp
	nextSub    gateway.SubID
	now        sim.Time // the router's virtual clock (max of shard clocks)
	quantum    time.Duration
	closed     bool
	stats      Stats
	// onMerge observes each Advance's merge+release wall-clock latency
	// (telemetry hook; see SetMergeObserver).
	onMerge func(time.Duration)
	// mergeTotal/mergeCount back MergeLatency for reports.
	mergeTotal time.Duration
	mergeCount int64
}

// New builds the shard fleet and the router's upstream session on each
// shard.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, fmt.Errorf("federation: shard topology: %w", err)
	}
	r := &Router{
		cfg:      cfg,
		ring:     newRing(cfg.Shards, cfg.Replicas),
		spn:      topo.Size() - 1,
		done:     make(chan struct{}),
		sessions: make(map[string]*Session),
		trees:    make(map[string]*tree),
		quantum:  defaultCatchUpStep,
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := r.buildShard(i)
		if err != nil {
			for _, prev := range r.shards {
				_ = prev.gw.Close()
			}
			return nil, err
		}
		r.shards = append(r.shards, sh)
	}
	return r, nil
}

func (r *Router) buildShard(i int) (*shard, error) {
	topo, err := topology.PaperGrid(r.cfg.Side)
	if err != nil {
		return nil, err
	}
	gcfg := gateway.Config{
		Sim: network.Config{
			Topo:     topo,
			Scheme:   r.cfg.Scheme,
			Seed:     r.cfg.Seed + int64(i),
			Alpha:    r.cfg.Alpha,
			Failures: r.cfg.Failures,
		},
		Buffer: r.cfg.Buffer,
		// The shard only ever sees the router's sessions: one upstream
		// session plus a durable mirror per downstream session homed here.
		MaxSessions:  r.cfg.MaxSessions + 1,
		SessionQuota: r.cfg.MaxSessions * r.cfg.SessionQuota,
		Rate:         r.cfg.Rate,
		Burst:        r.cfg.Burst,
		MaxStaged:    r.cfg.MaxStaged,
		MaxLiveSubs:  r.cfg.MaxLiveSubs,
		// The router's upstream session detaches during partitions of
		// unbounded (virtual) length; it must never be idle-reaped.
		IdleTimeout: -1,
	}
	if r.cfg.WALDir != "" {
		gcfg.WALPath = filepath.Join(r.cfg.WALDir, fmt.Sprintf("shard-%d.wal", i))
	}
	if r.cfg.ShardTracer != nil {
		gcfg.Tracer = r.cfg.ShardTracer(i)
		gcfg.TraceShard = i + 1
	}
	if hook := r.cfg.OnShardSim; hook != nil {
		idx := i
		gcfg.OnSim = func(s *network.Simulation) { hook(idx, s) }
	}
	gw, err := gateway.New(gcfg)
	if err != nil {
		return nil, fmt.Errorf("federation: shard %d: %w", i, err)
	}
	name := fmt.Sprintf("router@shard-%d", i)
	sess, err := gw.Register(name)
	if err != nil {
		_ = gw.Close()
		return nil, fmt.Errorf("federation: shard %d upstream session: %w", i, err)
	}
	return &shard{
		idx:       i,
		cfg:       gcfg,
		gw:        gw,
		name:      name,
		token:     sess.Token(),
		sess:      sess,
		ups:       make(map[gateway.SubID]*upstream),
		alive:     true,
		reachable: true,
		brk:       resilience.NewBreaker(r.cfg.Breaker),
	}, nil
}

// Shards returns the configured shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Now returns the router's virtual clock.
func (r *Router) Now() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

// nowMS is the router's virtual clock in milliseconds (callers hold r.mu).
func (r *Router) nowMS() int64 { return time.Duration(r.now).Milliseconds() }

// traceBreaker records a tier-level breaker transition span when a
// shard's circuit breaker changed state across an observation.
func (r *Router) traceBreaker(sh *shard, pre resilience.BreakerState) {
	if r.cfg.Tracer == nil {
		return
	}
	post := sh.brk.State()
	if post == pre {
		return
	}
	var kind string
	switch {
	case post == resilience.BreakerOpen && pre != resilience.BreakerOpen:
		kind = tracing.KindBreakerOpen
	case post == resilience.BreakerClosed && pre != resilience.BreakerClosed:
		kind = tracing.KindBreakerClose
	default:
		return // closed→half-open probes are not span-worthy
	}
	r.cfg.Tracer.Record(tracing.Span{
		Kind:  kind,
		Shard: sh.idx,
		AtMS:  r.nowMS(),
	})
}

// HomeShard returns the shard a session name hashes to.
func (r *Router) HomeShard(name string) int { return r.ring.lookup(name) }

// SetMergeObserver installs a callback observing each Advance's
// merge-and-release wall-clock latency (telemetry).
func (r *Router) SetMergeObserver(fn func(time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onMerge = fn
}

// MergeLatency reports the mean merge-and-release latency per Advance.
func (r *Router) MergeLatency() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mergeCount == 0 {
		return 0
	}
	return r.mergeTotal / time.Duration(r.mergeCount)
}

// FedStats snapshots the router's counters.
func (r *Router) FedStats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statsLocked()
}

func (r *Router) statsLocked() Stats {
	st := r.stats
	st.Shards = len(r.shards)
	for _, sh := range r.shards {
		if sh.alive {
			st.AliveShards++
		}
		if sh.stalled {
			st.StalledShards++
		}
		st.UpstreamSubs += len(sh.ups)
		st.BreakerTrips += sh.brk.Trips
		st.BreakerProbes += sh.brk.Probes
		st.BreakerRecoveries += sh.brk.Recoveries
	}
	st.ActiveSessions = 0
	for _, s := range r.sessions {
		if s.attached {
			st.ActiveSessions++
		}
		st.ActiveSubscriptions += len(s.live)
	}
	st.Trees = len(r.trees)
	return st
}

// ShardStats snapshots one shard's gateway counters (final counters for a
// dead shard).
func (r *Router) ShardStats(i int) (gateway.Stats, error) {
	r.mu.Lock()
	if i < 0 || i >= len(r.shards) {
		r.mu.Unlock()
		return gateway.Stats{}, fmt.Errorf("federation: no shard %d", i)
	}
	gw := r.shards[i].gw
	r.mu.Unlock()
	return gw.Stats()
}

// Alive reports whether the router is serving (false after Close).
func (r *Router) Alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.closed
}

// UpstreamSubsOn returns the number of canonical upstream subscriptions
// the router holds on shard i.
func (r *Router) UpstreamSubsOn(i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return 0
	}
	return len(r.shards[i].ups)
}

// ShardAlive reports whether shard i's gateway is up.
func (r *Router) ShardAlive(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return i >= 0 && i < len(r.shards) && r.shards[i].alive
}

// ShardNow returns shard i's virtual clock (frozen at crash time for a
// dead shard).
func (r *Router) ShardNow(i int) sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return 0
	}
	return r.shards[i].vnow
}

// ServeStats implements gateway.Backend: shard counters summed, with the
// serving-level fields overlaid from the router's own view.
func (r *Router) ServeStats() (gateway.Stats, sim.Time, error) {
	r.mu.Lock()
	gws := make([]*gateway.Gateway, len(r.shards))
	for i, sh := range r.shards {
		gws[i] = sh.gw
	}
	fs := r.statsLocked()
	now := r.now
	r.mu.Unlock()

	var agg gateway.Stats
	for _, gw := range gws {
		st, err := gw.Stats()
		if err != nil {
			continue
		}
		addGatewayStats(&agg, st)
	}
	agg.Sessions = fs.Sessions
	agg.ActiveSessions = fs.ActiveSessions
	agg.Subscribes = fs.Subscribes
	agg.Unsubscribes = fs.Unsubscribes
	agg.DedupHits = fs.DedupHits
	agg.ActiveSubscriptions = fs.ActiveSubscriptions
	agg.SharedQueries = fs.Trees
	agg.Updates = fs.Updates
	agg.Evicted = fs.Evicted
	agg.RingDropped += fs.RingDropped
	agg.Recoveries += fs.ShardRecoveries
	agg.ShedDeadline += fs.ShedDeadline
	return agg, now, nil
}

// addGatewayStats folds one shard's backend-side counters into the sum.
// Serving-level fields are overwritten by the router's own counters in
// ServeStats, so only the simulation/WAL-side ones matter here.
func addGatewayStats(dst *gateway.Stats, s gateway.Stats) {
	dst.Admitted += s.Admitted
	dst.Cancelled += s.Cancelled
	dst.Updates += s.Updates
	dst.Epochs += s.Epochs
	dst.Dropped += s.Dropped
	dst.Evicted += s.Evicted
	dst.Detaches += s.Detaches
	dst.Attaches += s.Attaches
	dst.Resumes += s.Resumes
	dst.ResumeGaps += s.ResumeGaps
	dst.RingDropped += s.RingDropped
	dst.IdleReaped += s.IdleReaped
	dst.Recoveries += s.Recoveries
	dst.WALAppends += s.WALAppends
	dst.WALSizeBytes += s.WALSizeBytes
	dst.WALCompactions += s.WALCompactions
	dst.ShedQueue += s.ShedQueue
	dst.ShedDeadline += s.ShedDeadline
	dst.ShedSubs += s.ShedSubs
	dst.ShedBrownout += s.ShedBrownout
}

// BrownoutLevel implements gateway.BrownoutReporter over the fleet: the
// router's pressure is its hottest alive shard's ladder rung.
func (r *Router) BrownoutLevel() resilience.Level {
	r.mu.Lock()
	defer r.mu.Unlock()
	lvl := resilience.LevelNormal
	for _, sh := range r.shards {
		if sh.alive {
			if l := sh.gw.BrownoutLevel(); l > lvl {
				lvl = l
			}
		}
	}
	return lvl
}

// ShardBreaker reports shard i's circuit-breaker state
// (BreakerClosed for an out-of-range index).
func (r *Router) ShardBreaker(i int) resilience.BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.shards) {
		return resilience.BreakerClosed
	}
	return r.shards[i].brk.State()
}

// ---------------------------------------------------------------------------
// Sessions and subscriptions (the downstream surface)

// Session is a downstream client session at the router. It satisfies
// gateway.ServerSession, so the TCP server drives it like a gateway
// session.
type Session struct {
	r     *Router
	name  string
	token string
	home  int
	// mirror is the durable twin on the home shard's gateway; its WAL
	// entry is what makes the session token survive a shard crash.
	mirror   *gateway.Session
	seq      uint64 // staging order tiebreaker
	live     map[gateway.SubID]*Sub
	attached bool
	closed   bool
}

// Name returns the session's registered name.
func (s *Session) Name() string { return s.name }

// Token returns the resume token for Attach after a disconnect.
func (s *Session) Token() string { return s.token }

// Sub is one downstream subscription to a merged cross-shard stream. It
// satisfies gateway.ServerSub.
type Sub struct {
	sess   *Session
	tr     *tree
	id     gateway.SubID
	key    string
	shared bool

	// Guarded by sess.r.mu.
	seq      uint64
	ch       chan gateway.Update
	ring     []gateway.Update // parked tail while detached
	detached bool
	reason   gateway.CloseReason
	// trace is the subscription's causal-trace identity (0 when the
	// router was built without a Tracer).
	trace uint64
}

// ID returns the subscription id (unique within the router).
func (s *Sub) ID() gateway.SubID { return s.id }

// TraceID reports the subscription's causal-trace identity (0 untraced).
func (s *Sub) TraceID() uint64 { return s.trace }

// Key returns the canonical downstream query text.
func (s *Sub) Key() string { return s.key }

// Shared reports whether the subscription joined an existing query tree.
func (s *Sub) Shared() bool { return s.shared }

// QueryID returns the representative upstream query id of the tree.
func (s *Sub) QueryID() query.ID {
	s.sess.r.mu.Lock()
	defer s.sess.r.mu.Unlock()
	return s.tr.qid
}

// Updates returns the live update channel (replaced on Resume).
func (s *Sub) Updates() <-chan gateway.Update {
	s.sess.r.mu.Lock()
	defer s.sess.r.mu.Unlock()
	return s.ch
}

// Reason reports why the channel closed (ReasonNone while live).
func (s *Sub) Reason() gateway.CloseReason {
	s.sess.r.mu.Lock()
	defer s.sess.r.mu.Unlock()
	return s.reason
}

// Register creates a downstream session homed (by consistent hash) on one
// shard. The home shard must be alive: the durable mirror session minted
// there backs the resume token.
func (r *Router) Register(name string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, gateway.ErrClosed
	}
	if _, dup := r.sessions[name]; dup {
		return nil, fmt.Errorf("federation: session %q already registered", name)
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		return nil, fmt.Errorf("federation: session limit %d reached", r.cfg.MaxSessions)
	}
	home := r.ring.lookup(name)
	sh := r.shards[home]
	if !sh.alive {
		return nil, fmt.Errorf("federation: home shard %d for %q is down", home, name)
	}
	mirror, err := sh.gw.Register(name)
	if err != nil {
		return nil, fmt.Errorf("federation: home shard %d: %w", home, err)
	}
	s := &Session{
		r:        r,
		name:     name,
		token:    mirror.Token(),
		home:     home,
		mirror:   mirror,
		live:     make(map[gateway.SubID]*Sub),
		attached: true,
	}
	r.sessions[name] = s
	r.stats.Sessions++
	return s, nil
}

// Attach re-claims a detached session by name and token.
func (r *Router) Attach(name, token string) (*Session, []gateway.ResumeInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, gateway.ErrClosed
	}
	s := r.sessions[name]
	if s == nil {
		return nil, nil, fmt.Errorf("federation: no session %q", name)
	}
	if s.token != token {
		return nil, nil, fmt.Errorf("federation: bad token for session %q", name)
	}
	if s.attached {
		return nil, nil, fmt.Errorf("federation: session %q is already attached", name)
	}
	s.attached = true
	ids := make([]gateway.SubID, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	infos := make([]gateway.ResumeInfo, 0, len(ids))
	for _, id := range ids {
		sub := s.live[id]
		infos = append(infos, gateway.ResumeInfo{
			ID: id, Key: sub.key, QueryID: sub.tr.qid, LastSeq: sub.seq,
		})
	}
	return s, infos, nil
}

// RegisterSession implements gateway.Backend.
func (r *Router) RegisterSession(name string) (gateway.ServerSession, error) {
	s, err := r.Register(name)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// AttachSession implements gateway.Backend.
func (r *Router) AttachSession(name, token string) (gateway.ServerSession, []gateway.ResumeInfo, error) {
	s, infos, err := r.Attach(name, token)
	if err != nil {
		return nil, nil, err
	}
	return s, infos, nil
}

// SubscribeAsync stages a subscription, committed at the next Advance.
func (s *Session) SubscribeAsync(q query.Query) (*Ticket, error) {
	return s.SubscribeAsyncBudget(q, 0)
}

// SubscribeAsyncBudget stages a subscription carrying a mailbox deadline
// budget: if the command is still staged after `budget` at commit time it
// is shed with resilience.ErrOverloaded, and whatever is left of the
// budget is forwarded to the shard gateways' own mailboxes. Zero falls
// back to Config.MailboxDeadline.
func (s *Session) SubscribeAsyncBudget(q query.Query, budget time.Duration) (*Ticket, error) {
	return s.SubscribeAsyncTraced(q, budget, tracing.Context{})
}

// SubscribeAsyncTraced is SubscribeAsyncBudget with a subscriber-propagated
// causal-trace context: the router's subscribe span parents on tc.Span, and
// the context rides the shard fan-out so every tier's spans join one trace.
// A zero context derives a deterministic trace at commit.
func (s *Session) SubscribeAsyncTraced(q query.Query, budget time.Duration, tc tracing.Context) (*Ticket, error) {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, gateway.ErrClosed
	}
	if s.closed {
		return nil, fmt.Errorf("federation: session %q is closed", s.name)
	}
	s.seq++
	c := &rcmd{kind: cmdSubscribe, sess: s, seq: s.seq, q: q, done: make(chan rres, 1),
		at: time.Now(), deadline: budget, trace: tc}
	r.staged = append(r.staged, c)
	return &Ticket{r: r, done: c.done}, nil
}

// SubscribeQuery implements gateway.ServerSession: parse, stage, wait.
func (s *Session) SubscribeQuery(text string) (gateway.ServerSub, error) {
	return s.SubscribeQueryBudget(text, 0)
}

// SubscribeQueryBudget implements gateway.BudgetSubscriber: the wire
// deadline_ms budget rides the staged command through the router and on
// to the shard mailboxes.
func (s *Session) SubscribeQueryBudget(text string, budget time.Duration) (gateway.ServerSub, error) {
	return s.SubscribeQueryTraced(text, budget, 0)
}

// SubscribeQueryTraced implements gateway.TracedSubscriber: the wire
// trace_id (or a derived trace) keys every router and shard span this
// subscription produces.
func (s *Session) SubscribeQueryTraced(text string, budget time.Duration, trace uint64) (gateway.ServerSub, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	tk, err := s.SubscribeAsyncTraced(q, budget, tracing.Context{Trace: trace})
	if err != nil {
		return nil, err
	}
	sub, err := tk.Wait()
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// UnsubscribeAsync stages an unsubscribe, committed at the next Advance.
func (s *Session) UnsubscribeAsync(id gateway.SubID) (*Ticket, error) {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, gateway.ErrClosed
	}
	if s.closed {
		return nil, fmt.Errorf("federation: session %q is closed", s.name)
	}
	s.seq++
	c := &rcmd{kind: cmdUnsubscribe, sess: s, seq: s.seq, id: id, done: make(chan rres, 1)}
	r.staged = append(r.staged, c)
	return &Ticket{r: r, done: c.done}, nil
}

// Unsubscribe implements gateway.ServerSession (blocks until commit).
func (s *Session) Unsubscribe(id gateway.SubID) error {
	tk, err := s.UnsubscribeAsync(id)
	if err != nil {
		return err
	}
	_, err = tk.Wait()
	return err
}

// Detach releases the connection but keeps the session resumable: live
// streams park their tails in bounded rings.
func (s *Session) Detach() error {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return gateway.ErrClosed
	}
	if s.closed {
		return fmt.Errorf("federation: session %q is closed", s.name)
	}
	if !s.attached {
		return fmt.Errorf("federation: session %q is already detached", s.name)
	}
	s.attached = false
	for _, sub := range s.live {
		sub.detachLocked()
	}
	return nil
}

// detachLocked parks the stream: buffered updates move to the ring and
// the channel closes so the forwarder drains out.
func (sub *Sub) detachLocked() {
	if sub.detached || sub.reason != gateway.ReasonNone {
		return
	}
	sub.detached = true
	sub.reason = gateway.ReasonDetached
	close(sub.ch)
	for u := range sub.ch {
		sub.pushRing(u)
	}
}

// pushRing appends to the parked tail, dropping the oldest update past
// the buffer bound.
func (sub *Sub) pushRing(u gateway.Update) {
	r := sub.sess.r
	sub.ring = append(sub.ring, u)
	if max := r.cfg.Buffer; len(sub.ring) > max {
		drop := len(sub.ring) - max
		sub.ring = append(sub.ring[:0], sub.ring[drop:]...)
		r.stats.RingDropped += int64(drop)
	}
}

// Resume revives a detached stream from just after sequence `after`,
// replaying the parked tail before going live. Implements
// gateway.ServerSession.
func (s *Session) Resume(id gateway.SubID, after uint64) (gateway.ServerSub, error) {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, gateway.ErrClosed
	}
	if !s.attached {
		return nil, fmt.Errorf("federation: session %q is detached", s.name)
	}
	sub := s.live[id]
	if sub == nil {
		return nil, fmt.Errorf("federation: session %q has no stream %d", s.name, id)
	}
	if !sub.detached {
		return nil, fmt.Errorf("federation: stream %d is already attached", id)
	}
	sub.ch = make(chan gateway.Update, r.cfg.Buffer)
	for _, u := range sub.ring {
		if u.Seq > after {
			sub.ch <- u
		}
	}
	sub.ring = nil
	sub.detached = false
	sub.reason = gateway.ReasonNone
	return sub, nil
}

// CloseAsync stages session teardown; completion lags until the next
// Advance. Implements gateway.ServerSession.
func (s *Session) CloseAsync() error {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return gateway.ErrClosed
	}
	if s.closed {
		return nil
	}
	s.seq++
	c := &rcmd{kind: cmdClose, sess: s, seq: s.seq, done: make(chan rres, 1)}
	r.staged = append(r.staged, c)
	return nil
}

// ---------------------------------------------------------------------------
// Advance: group commit, parallel shard advance, drain, merge, release

// Advance commits staged downstream commands, advances every alive shard
// by d in parallel, drains their partial results and releases fully
// merged epochs up to the watermark. Implements gateway.Backend.
func (r *Router) Advance(d time.Duration) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, gateway.ErrClosed
	}
	if d > 0 {
		r.quantum = d
	}

	applied, acks := r.commitLocked()

	// Advance alive shards in parallel: each runs its own simulation for
	// one quantum; this is where shard count buys wall-clock throughput.
	// Stalled shards (chaos: wedged but not crashed) and shards behind an
	// open breaker are held out of the round; their breakers observe the
	// timeout — a closed breaker counts its failure streak, an open one
	// ticks its cooldown toward a half-open probe.
	var wg sync.WaitGroup
	errs := make([]error, len(r.shards))
	advanced := make([]bool, len(r.shards))
	preState := make([]resilience.BreakerState, len(r.shards))
	for _, sh := range r.shards {
		if !sh.alive {
			continue
		}
		preState[sh.idx] = sh.brk.State()
		if sh.stalled || preState[sh.idx] == resilience.BreakerOpen {
			sh.brk.Observe(false)
			r.traceBreaker(sh, preState[sh.idx])
			continue
		}
		advanced[sh.idx] = true
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			_, errs[sh.idx] = sh.gw.Advance(d)
		}(sh)
	}
	wg.Wait()
	var firstErr error
	for _, sh := range r.shards {
		if !sh.alive || !advanced[sh.idx] {
			continue
		}
		if err := errs[sh.idx]; err != nil {
			// The shard died under us (e.g. chaos crash): freeze it.
			sh.alive = false
			sh.reachable = false
			sh.frozen = sh.vnow
			sh.sess = nil
			for _, up := range sh.ups {
				up.sub = nil
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("federation: shard %d advance: %w", sh.idx, err)
			}
			continue
		}
		sh.vnow += sim.Time(d)
		if sh.vnow > r.now {
			r.now = sh.vnow
		}
		sh.brk.Observe(true)
		r.traceBreaker(sh, preState[sh.idx])
		if preState[sh.idx] == resilience.BreakerHalfOpen {
			// The probe succeeded: the breaker closed, so replay the quanta
			// the shard sat out while open. Coverage returns to 1.0 once its
			// watermark passes the other shards' again.
			r.catchUpLocked(sh)
		}
	}

	r.resolveUpstreamsLocked()

	t0 := time.Now()
	for _, sh := range r.shards {
		if sh.alive && sh.reachable {
			r.drainShardLocked(sh)
		}
	}
	r.releaseLocked()
	merge := time.Since(t0)
	r.mergeTotal += merge
	r.mergeCount++
	if r.onMerge != nil {
		r.onMerge(merge)
	}

	r.ackLocked(acks)
	return applied, firstErr
}

// commitLocked applies staged commands in deterministic (session name,
// seq) order. Subscribe acks are deferred until upstream resolution.
func (r *Router) commitLocked() (int, []pendingAck) {
	staged := r.staged
	r.staged = nil
	sort.SliceStable(staged, func(i, j int) bool {
		if staged[i].sess.name != staged[j].sess.name {
			return staged[i].sess.name < staged[j].sess.name
		}
		return staged[i].seq < staged[j].seq
	})
	wall := time.Now()
	var acks []pendingAck
	for _, c := range staged {
		switch c.kind {
		case cmdSubscribe:
			if err := r.checkDeadlineLocked(c, wall); err != nil {
				c.done <- rres{err: err}
				continue
			}
			sub, tr, err := r.applySubscribeLocked(c)
			if err != nil {
				c.done <- rres{err: err}
				continue
			}
			acks = append(acks, pendingAck{c: c, sub: sub, tr: tr})
		case cmdUnsubscribe:
			c.done <- rres{err: r.applyUnsubscribeLocked(c)}
		case cmdClose:
			r.applyCloseLocked(c.sess)
			c.done <- rres{}
		}
	}
	return len(staged), acks
}

// checkDeadlineLocked sheds a staged subscribe whose mailbox sojourn
// (stage to commit, wall clock) exceeded its budget.
func (r *Router) checkDeadlineLocked(c *rcmd, wall time.Time) error {
	budget := c.deadline
	if budget <= 0 {
		budget = r.cfg.MailboxDeadline
	}
	if budget <= 0 || c.at.IsZero() || wall.Sub(c.at) <= budget {
		return nil
	}
	r.stats.ShedDeadline++
	return &resilience.OverloadError{RetryAfter: gateway.DefaultShedRetryAfter, Reason: "deadline"}
}

func (r *Router) applySubscribeLocked(c *rcmd) (*Sub, *tree, error) {
	s := c.sess
	if s.closed {
		return nil, nil, fmt.Errorf("federation: session %q is closed", s.name)
	}
	if len(s.live) >= r.cfg.SessionQuota {
		return nil, nil, fmt.Errorf("federation: session %q is at its quota of %d subscriptions",
			s.name, r.cfg.SessionQuota)
	}
	q := c.q.Normalize()
	q.ID = 0
	if q.Lifetime != 0 {
		return nil, nil, fmt.Errorf("federation: LIFETIME is not supported for subscriptions")
	}
	key := gateway.CanonicalKey(q)
	r.stats.Subscribes++
	// Causal trace: a subscriber-propagated context wins; otherwise derive
	// deterministically from the session name and staging sequence, so the
	// same command sequence yields the same trace IDs on every run.
	var trace, span uint64
	if r.cfg.Tracer != nil {
		trace = c.trace.Trace
		if trace == 0 {
			trace = tracing.TraceID(s.name, c.seq)
		}
		span = r.cfg.Tracer.Record(tracing.Span{
			Trace:  trace,
			Parent: c.trace.Span,
			Kind:   tracing.KindSubscribe,
			Shard:  tracing.NoShard,
			AtMS:   r.nowMS(),
			Seq:    c.seq,
		})
	}
	tr := r.trees[key]
	shared := tr != nil
	if tr == nil {
		p, err := planQuery(q, len(r.shards), r.spn)
		if err != nil {
			return nil, nil, err
		}
		// Every planned shard must be alive and reachable to establish
		// the canonical upstreams.
		for _, sl := range p.slices {
			sh := r.shards[sl.shard]
			if !sh.alive || !sh.reachable {
				return nil, nil, fmt.Errorf("federation: shard %d (region sensors %d..%d) is unavailable",
					sl.shard, sl.shard*r.spn+1, (sl.shard+1)*r.spn)
			}
		}
		tr = &tree{key: key, p: p, trace: trace, spanID: span}
		rem := c.remainingBudget()
		for i, sl := range p.slices {
			sh := r.shards[sl.shard]
			up := &upstream{sh: sh, tr: tr, slice: i}
			// Fan-out span per slice; the shard gateway's subscribe span
			// parents on it, stitching router→shard in one trace.
			shardCtx := tracing.Context{}
			if r.cfg.Tracer != nil {
				fanID := r.cfg.Tracer.Record(tracing.Span{
					Trace:  trace,
					Parent: span,
					Kind:   tracing.KindShardFanout,
					Shard:  sl.shard,
					AtMS:   r.nowMS(),
					Note:   key,
				})
				shardCtx = tracing.Context{Trace: trace, Span: fanID}
			}
			tk, err := sh.sess.SubscribeAsyncTraced(sl.q, rem, shardCtx)
			if err != nil {
				return nil, nil, fmt.Errorf("federation: shard %d subscribe: %w", sl.shard, err)
			}
			tr.ups = append(tr.ups, up)
			r.pendingUps = append(r.pendingUps, pendingUp{up: up, tk: tk})
		}
		r.trees[key] = tr
	} else {
		r.stats.DedupHits++
		if r.cfg.Tracer != nil {
			r.cfg.Tracer.Record(tracing.Span{
				Trace:  trace,
				Parent: span,
				Kind:   tracing.KindDedupHit,
				Shard:  tracing.NoShard,
				AtMS:   r.nowMS(),
				Note:   key,
			})
		}
	}
	r.nextSub++
	sub := &Sub{
		sess:   s,
		tr:     tr,
		id:     r.nextSub,
		key:    key,
		shared: shared,
		ch:     make(chan gateway.Update, r.cfg.Buffer),
		seq:    0,
		trace:  trace,
	}
	if !s.attached {
		sub.detached = true
		sub.reason = gateway.ReasonDetached
	}
	tr.subs = append(tr.subs, sub)
	s.live[sub.id] = sub
	return sub, tr, nil
}

func (r *Router) applyUnsubscribeLocked(c *rcmd) error {
	s := c.sess
	sub := s.live[c.id]
	if sub == nil {
		return fmt.Errorf("federation: session %q has no subscription %d", s.name, c.id)
	}
	r.stats.Unsubscribes++
	r.dropSubLocked(sub, gateway.ReasonUnsubscribed)
	return nil
}

func (r *Router) applyCloseLocked(s *Session) {
	if s.closed {
		return
	}
	for _, id := range sortedSubIDs(s.live) {
		r.dropSubLocked(s.live[id], gateway.ReasonShutdown)
	}
	s.closed = true
	s.attached = false
	delete(r.sessions, s.name)
	// Tear down the durable mirror on the home shard so its WAL entry is
	// reclaimed; best effort — the shard may be down.
	if sh := r.shards[s.home]; sh.alive && s.mirror != nil {
		if tk, err := s.mirror.CloseAsync(); err == nil {
			go func() { _, _ = tk.Wait() }()
		}
	}
	s.mirror = nil
}

// dropSubLocked closes a downstream stream and, on last-unsubscribe,
// tears its tree down (cancelling the canonical upstreams).
func (r *Router) dropSubLocked(sub *Sub, reason gateway.CloseReason) {
	s := sub.sess
	delete(s.live, sub.id)
	if sub.reason == gateway.ReasonNone || sub.detached {
		if sub.detached {
			sub.ring = nil
			sub.reason = reason
		} else {
			sub.reason = reason
			close(sub.ch)
		}
	}
	tr := sub.tr
	for i, other := range tr.subs {
		if other == sub {
			tr.subs = append(tr.subs[:i], tr.subs[i+1:]...)
			break
		}
	}
	if len(tr.subs) == 0 {
		r.teardownTreeLocked(tr)
	}
}

func (r *Router) teardownTreeLocked(tr *tree) {
	for _, up := range tr.ups {
		if up.sub != nil {
			delete(up.sh.ups, up.id)
			if up.sh.alive && up.sh.reachable && up.sh.sess != nil {
				if tk, err := up.sh.sess.UnsubscribeAsync(up.id); err == nil {
					go func() { _, _ = tk.Wait() }()
				}
			}
			up.sub = nil
		}
	}
	delete(r.trees, tr.key)
}

// resolveUpstreamsLocked collects the shard tickets staged at commit
// (the shard Advance has committed them) and wires the upstream subs.
func (r *Router) resolveUpstreamsLocked() {
	pending := r.pendingUps
	r.pendingUps = nil
	for _, pu := range pending {
		up := pu.up
		sub, err := pu.tk.Wait()
		if err != nil {
			if up.tr.broken == nil {
				up.tr.broken = fmt.Errorf("federation: shard %d admission: %w", up.sh.idx, err)
			}
			continue
		}
		up.sub = sub
		up.id = sub.ID()
		up.lastSeq = 0
		up.sh.ups[up.id] = up
		if up.slice == 0 {
			up.tr.qid = sub.QueryID()
		}
	}
}

// ackLocked replies to the deferred subscribe commands, failing those
// whose trees broke during upstream establishment.
func (r *Router) ackLocked(acks []pendingAck) {
	for _, a := range acks {
		if a.tr.broken != nil {
			err := a.tr.broken
			if _, live := a.sub.sess.live[a.sub.id]; live {
				r.dropSubLocked(a.sub, gateway.ReasonShutdown)
			}
			a.c.done <- rres{err: err}
			continue
		}
		a.c.done <- rres{sub: a.sub}
	}
}

// drainShardLocked empties every upstream channel of one shard into the
// pending epoch accumulators.
func (r *Router) drainShardLocked(sh *shard) {
	for _, id := range sortedUpIDs(sh.ups) {
		up := sh.ups[id]
		if up.sub == nil {
			continue
		}
		r.drainUpstreamLocked(up)
	}
}

func (r *Router) drainUpstreamLocked(up *upstream) {
	ch := up.sub.Updates()
	for {
		select {
		case u, ok := <-ch:
			if !ok {
				// The shard closed the stream under us (eviction — should
				// not happen at router drain cadence, but a chaos scenario
				// can force it). Orphan the upstream; the tree stalls
				// until teardown.
				up.sub = nil
				return
			}
			up.lastSeq = u.Seq
			r.mergePartialLocked(up, u)
		default:
			return
		}
	}
}

func (r *Router) mergePartialLocked(up *upstream, u gateway.Update) {
	r.stats.PartialUpdates++
	tr := up.tr
	if tr.released > 0 && u.At <= tr.released {
		r.stats.LateDropped++
		return
	}
	acc := tr.acc(u.At)
	if len(u.Rows) > 0 {
		acc.rows = translateRows(acc.rows, u.Rows, up.sh.idx, r.spn)
	}
	if len(u.Aggs) > 0 {
		acc.addAggs(u.Aggs)
	}
}

// releaseLocked pushes every fully merged epoch (At <= the tree's
// watermark) downstream in virtual-time order. MaxPending overflow
// force-releases the oldest epochs without the stalled shard's partials.
func (r *Router) releaseLocked() {
	for _, key := range sortedTreeKeys(r.trees) {
		tr := r.trees[key]
		if len(tr.pending) == 0 {
			continue
		}
		wm := sim.Time(1<<63 - 1)
		for _, idx := range tr.p.shardSet() {
			sh := r.shards[idx]
			if sh.brk.State() != resilience.BreakerClosed {
				// A tripped (or still-probing) shard must not stall the
				// whole tree: its frozen clock is ignored and epochs release
				// degraded — marked with their coverage fraction — until the
				// breaker closes and the shard catches up.
				continue
			}
			if w := sh.watermark(); w < wm {
				wm = w
			}
		}
		times := make([]sim.Time, 0, len(tr.pending))
		for at := range tr.pending {
			times = append(times, at)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		force := 0
		if over := len(times) - r.cfg.MaxPending; over > 0 {
			force = over
		}
		for i, at := range times {
			if at >= wm && i >= force {
				break
			}
			if at >= wm {
				r.stats.ForcedReleases++
			}
			r.releaseEpochLocked(tr, tr.pending[at])
			delete(tr.pending, at)
			tr.released = at
		}
		// A tree can lose its last subscriber via eviction during release.
		if len(tr.subs) == 0 {
			r.teardownTreeLocked(tr)
		}
	}
}

func (r *Router) releaseEpochLocked(tr *tree, acc *epochAcc) {
	r.stats.MergedEpochs++
	// Coverage: a spanned shard has contributed everything it will for
	// this epoch exactly when its watermark passed the epoch's instant.
	// Anything released ahead of a shard's watermark (breaker exclusion,
	// MaxPending force-release) is degraded, with the contributing
	// fraction on every delivered update.
	spanned := tr.p.shardSet()
	covered := 0
	var coveredMask uint64
	for _, idx := range spanned {
		if r.shards[idx].watermark() > acc.at {
			covered++
			coveredMask |= 1 << uint(idx)
		}
	}
	degraded := covered < len(spanned)
	coverage := 1.0
	if len(spanned) > 0 {
		coverage = float64(covered) / float64(len(spanned))
	}
	if degraded {
		r.stats.DegradedEpochs++
	}
	if r.cfg.Tracer != nil && tr.trace != 0 {
		// One release span per epoch on the materializing trace; DurMS is
		// the virtual watermark wait from the epoch's instant to release.
		kind := tracing.KindMergeRelease
		if degraded {
			kind = tracing.KindDegraded
		}
		at := time.Duration(acc.at).Milliseconds()
		r.cfg.Tracer.Record(tracing.Span{
			Trace:    tr.trace,
			Parent:   tr.spanID,
			Kind:     kind,
			Shard:    tracing.NoShard,
			AtMS:     at,
			DurMS:    r.nowMS() - at,
			Seq:      uint64(len(spanned)),
			Degraded: degraded,
			Coverage: coverage,
		})
	}
	aggs := acc.finish(tr.p)
	var evicted []*Sub
	for _, sub := range tr.subs {
		sub.seq++
		u := gateway.Update{
			Sub:      sub.id,
			QueryID:  tr.qid,
			Seq:      sub.seq,
			At:       acc.at,
			Rows:     acc.rows,
			Aggs:     aggs,
			Degraded: degraded,
			Coverage: coverage,
			Enqueued: time.Now(),
		}
		if sub.trace != 0 {
			u.Trace = sub.trace
			u.Prov = tracing.Prov{Shards: coveredMask}
		}
		if sub.detached {
			sub.pushRing(u)
			r.stats.Updates++
			continue
		}
		select {
		case sub.ch <- u:
			r.stats.Updates++
		default:
			evicted = append(evicted, sub)
		}
	}
	for _, sub := range evicted {
		r.stats.Evicted++
		r.dropSubEvictedLocked(sub)
	}
}

// dropSubEvictedLocked removes an overflowed subscriber without tearing
// the tree down mid-release (releaseLocked sweeps empty trees after).
func (r *Router) dropSubEvictedLocked(sub *Sub) {
	delete(sub.sess.live, sub.id)
	sub.reason = gateway.ReasonEvicted
	close(sub.ch)
	tr := sub.tr
	for i, other := range tr.subs {
		if other == sub {
			tr.subs = append(tr.subs[:i], tr.subs[i+1:]...)
			break
		}
	}
}

// ---------------------------------------------------------------------------
// Failure injection and recovery

// CrashShard kills shard i's gateway process abruptly (no clean
// shutdown). Its trees stall at the frozen watermark until RecoverShard.
func (r *Router) CrashShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, err := r.shardLocked(i)
	if err != nil {
		return err
	}
	if !sh.alive {
		return fmt.Errorf("federation: shard %d is already down", i)
	}
	if err := sh.gw.Crash(); err != nil {
		return err
	}
	sh.alive = false
	sh.reachable = false
	sh.frozen = sh.vnow
	sh.sess = nil
	for _, up := range sh.ups {
		up.sub = nil // channels closed with ReasonCrashed
	}
	r.stats.ShardCrashes++
	return nil
}

// RecoverShard rebuilds a crashed shard from its WAL, re-attaches the
// router's upstream session by its durable token, resumes every upstream
// stream from its last delivered sequence number, and replays the shard
// forward to the router's clock one quantum at a time (draining between
// steps so no channel overflows).
func (r *Router) RecoverShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, err := r.shardLocked(i)
	if err != nil {
		return err
	}
	if sh.alive {
		return fmt.Errorf("federation: shard %d is alive", i)
	}
	if sh.cfg.WALPath == "" {
		return fmt.Errorf("federation: shard %d has no WAL (set Config.WALDir)", i)
	}
	gw, err := gateway.Recover(sh.cfg)
	if err != nil {
		return fmt.Errorf("federation: shard %d recover: %w", i, err)
	}
	sh.gw = gw
	if err := r.reattachLocked(sh); err != nil {
		return err
	}
	sh.alive = true
	sh.reachable = true
	r.stats.ShardRecoveries++
	r.catchUpLocked(sh)
	return nil
}

// PartitionShard cuts the router off from shard i without stopping it:
// the upstream session detaches, so the shard keeps advancing and its
// updates park in bounded resume rings until HealShard.
func (r *Router) PartitionShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, err := r.shardLocked(i)
	if err != nil {
		return err
	}
	if !sh.alive {
		return fmt.Errorf("federation: shard %d is down", i)
	}
	if !sh.reachable {
		return fmt.Errorf("federation: shard %d is already partitioned", i)
	}
	if err := sh.sess.Detach(); err != nil {
		return err
	}
	sh.reachable = false
	sh.frozen = sh.vnow
	for _, up := range sh.ups {
		up.sub = nil // channels closed with ReasonDetached
	}
	r.stats.Partitions++
	return nil
}

// HealShard reconnects a partitioned shard: the upstream session
// re-attaches and every stream resumes from its last delivered sequence,
// replaying the parked tail (bounded by the shard's resume rings).
func (r *Router) HealShard(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, err := r.shardLocked(i)
	if err != nil {
		return err
	}
	if !sh.alive {
		return fmt.Errorf("federation: shard %d is down (use RecoverShard)", i)
	}
	if sh.reachable {
		return fmt.Errorf("federation: shard %d is not partitioned", i)
	}
	if err := r.reattachLocked(sh); err != nil {
		return err
	}
	sh.reachable = true
	r.stats.Heals++
	// The parked tails are already in the fresh channels; fold them in
	// now so the next Advance's watermark releases them in order.
	r.drainShardLocked(sh)
	return nil
}

// StallShard wedges shard i (stuck=true): its gateway stays alive and
// reachable but stops answering Advance, the way a live-locked or
// GC-thrashing process would — no crash, no partition, just silence.
// The router's per-shard circuit breaker observes the consecutive
// timeouts and trips open after Config.Breaker.TripAfter of them, at
// which point spanned trees release epochs without the shard (marked
// degraded with a coverage fraction) instead of stalling behind its
// frozen watermark. StallShard(i, false) un-wedges it; the next
// half-open probe succeeds, the breaker closes, and the shard replays
// forward to the router's clock.
func (r *Router) StallShard(i int, stuck bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, err := r.shardLocked(i)
	if err != nil {
		return err
	}
	if !sh.alive {
		return fmt.Errorf("federation: shard %d is down", i)
	}
	if sh.stalled == stuck {
		if stuck {
			return fmt.Errorf("federation: shard %d is already stalled", i)
		}
		return fmt.Errorf("federation: shard %d is not stalled", i)
	}
	sh.stalled = stuck
	if stuck {
		r.stats.ShardStalls++
	}
	return nil
}

func (r *Router) shardLocked(i int) (*shard, error) {
	if r.closed {
		return nil, gateway.ErrClosed
	}
	if i < 0 || i >= len(r.shards) {
		return nil, fmt.Errorf("federation: no shard %d", i)
	}
	return r.shards[i], nil
}

// reattachLocked re-claims the router's upstream session on a shard and
// resumes every tracked upstream stream from its last delivered
// sequence number.
func (r *Router) reattachLocked(sh *shard) error {
	sess, infos, err := sh.gw.Attach(sh.name, sh.token)
	if err != nil {
		return fmt.Errorf("federation: shard %d attach: %w", sh.idx, err)
	}
	sh.sess = sess
	known := make(map[gateway.SubID]bool, len(infos))
	for _, in := range infos {
		known[in.ID] = true
	}
	for _, id := range sortedUpIDs(sh.ups) {
		up := sh.ups[id]
		if !known[id] {
			// The shard no longer carries the stream (e.g. its query was
			// cancelled before the crash landed in the WAL). Orphan it.
			delete(sh.ups, id)
			continue
		}
		sub, err := sess.Resume(id, up.lastSeq)
		if err != nil {
			delete(sh.ups, id)
			continue
		}
		up.sub = sub
		r.stats.UpstreamResumes++
	}
	// Drop any shard-side streams the router no longer wants (their trees
	// were torn down while the shard was unreachable).
	for _, in := range infos {
		if _, want := sh.ups[in.ID]; !want {
			if tk, err := sess.UnsubscribeAsync(in.ID); err == nil {
				go func() { _, _ = tk.Wait() }()
			}
		}
	}
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Record(tracing.Span{
			Kind:  tracing.KindReattach,
			Shard: sh.idx,
			AtMS:  r.nowMS(),
			Seq:   uint64(len(sh.ups)),
		})
	}
	return nil
}

// catchUpLocked replays a recovered shard forward to the router's clock,
// draining between quantum steps so upstream channels never overflow.
func (r *Router) catchUpLocked(sh *shard) {
	step := r.quantum
	if step <= 0 {
		step = defaultCatchUpStep
	}
	for sh.vnow < r.now {
		d := step
		if rem := time.Duration(r.now - sh.vnow); rem < d {
			d = rem
		}
		if _, err := sh.gw.Advance(d); err != nil {
			sh.alive = false
			sh.reachable = false
			sh.frozen = sh.vnow
			return
		}
		sh.vnow += sim.Time(d)
		r.drainShardLocked(sh)
	}
}

// ---------------------------------------------------------------------------
// Shutdown

// Close shuts the router and every alive shard down. Staged commands and
// live downstream streams fail with ReasonShutdown.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return gateway.ErrClosed
	}
	r.closed = true
	for _, c := range r.staged {
		c.done <- rres{err: gateway.ErrClosed}
	}
	r.staged = nil
	r.pendingUps = nil
	for _, s := range r.sessions {
		s.closed = true
		s.attached = false
		for _, id := range sortedSubIDs(s.live) {
			sub := s.live[id]
			if sub.reason == gateway.ReasonNone && !sub.detached {
				sub.reason = gateway.ReasonShutdown
				close(sub.ch)
			} else if sub.detached {
				sub.reason = gateway.ReasonShutdown
				sub.ring = nil
			}
		}
		s.live = map[gateway.SubID]*Sub{}
	}
	gws := make([]*gateway.Gateway, 0, len(r.shards))
	for _, sh := range r.shards {
		if sh.alive {
			gws = append(gws, sh.gw)
		}
		sh.alive = false
		sh.reachable = false
	}
	close(r.done)
	r.mu.Unlock()

	var firstErr error
	for _, gw := range gws {
		if err := gw.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Small helpers

func sortedSubIDs(m map[gateway.SubID]*Sub) []gateway.SubID {
	ids := make([]gateway.SubID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedUpIDs(m map[gateway.SubID]*upstream) []gateway.SubID {
	ids := make([]gateway.SubID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedTreeKeys(m map[string]*tree) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
