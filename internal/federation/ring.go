// Package federation breaks the one-simulation/one-gateway ceiling: K
// region-partitioned simulations each run behind their own gateway.Gateway
// shard, fronted by a Router that consistent-hashes sessions to home
// shards, plans cross-shard queries by splitting their nodeid region
// predicate across the shards it intersects, merges and re-aggregates the
// partial results (SUM/COUNT/MIN/MAX/AVG recombination) with one canonical
// upstream subscription per shard per query, and fails a dead shard's
// state over after recovery using the gateway's WAL + session-token resume
// machinery. The Router implements gateway.Backend, so the existing TCP
// server, binary wire codec and client front it unchanged.
package federation

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the number of virtual points each shard claims on the
// hash ring. More replicas smooth the key distribution at the cost of a
// larger (still tiny) lookup table.
const DefaultReplicas = 64

// ring maps session names onto shards by consistent hashing: each shard
// claims Replicas pseudo-random points on a 64-bit circle and a name lands
// on the first point at or clockwise of its own hash. Adding or removing
// one shard moves only ~1/K of the keyspace.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

func newRing(shards, replicas int) *ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// lookup returns the home shard of a key.
func (r *ring) lookup(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the highest point, the circle continues at the lowest
	}
	return r.points[i].shard
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
