package federation

import (
	"fmt"
	"testing"
)

// The ring must be deterministic (same shard count, same layout), cover
// every shard, and move only a small keyspace fraction when a shard is
// added.
func TestRingDeterministicAndCovering(t *testing.T) {
	a := newRing(4, 0)
	b := newRing(4, 0)
	hits := make(map[int]int, 4)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("session-%d", i)
		s := a.lookup(key)
		if s != b.lookup(key) {
			t.Fatalf("ring lookup for %q is not deterministic", key)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("lookup(%q) = %d, out of range", key, s)
		}
		hits[s]++
	}
	for s := 0; s < 4; s++ {
		if hits[s] == 0 {
			t.Fatalf("shard %d claimed no keys out of 4096", s)
		}
	}
}

// Consistency: growing K shards to K+1 may only move keys onto the new
// shard — a key that stays on an old shard must stay on the same one.
func TestRingGrowMovesOnlyToNewShard(t *testing.T) {
	small := newRing(4, 0)
	big := newRing(5, 0)
	moved := 0
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("session-%d", i)
		before, after := small.lookup(key), big.lookup(key)
		if before == after {
			continue
		}
		if after != 4 {
			t.Fatalf("key %q moved from shard %d to old shard %d", key, before, after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no key moved to the new shard (ring ignores it)")
	}
	if moved > 4096/2 {
		t.Fatalf("%d/4096 keys moved on grow; consistent hashing should move ~1/5", moved)
	}
}
