package federation

import (
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/gateway"
	"repro/internal/query"
	"repro/internal/sim"
)

// The router must be drivable by the TCP server exactly like a gateway.
var (
	_ gateway.Backend       = (*Router)(nil)
	_ gateway.ServerSession = (*Session)(nil)
	_ gateway.ServerSub     = (*Sub)(nil)
)

const testQuantum = 8192 * time.Millisecond

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Side == 0 {
		cfg.Side = 2 // 3 sensors per shard
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func stageSub(t *testing.T, s *Session, text string) *Ticket {
	t.Helper()
	tk, err := s.SubscribeAsync(query.MustParse(text))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

// drain empties a subscription channel without blocking.
func drain(ch <-chan gateway.Update, into *[]gateway.Update) {
	for {
		select {
		case u, ok := <-ch:
			if !ok {
				return
			}
			*into = append(*into, u)
		default:
			return
		}
	}
}

// checkStream asserts the delivery invariants: sequence numbers are
// contiguous from 1 and virtual time strictly increases.
func checkStream(t *testing.T, updates []gateway.Update) {
	t.Helper()
	for i, u := range updates {
		if u.Seq != uint64(i+1) {
			t.Fatalf("update %d has seq %d (dupe or gap)", i, u.Seq)
		}
		if i > 0 && u.At <= updates[i-1].At {
			t.Fatalf("update %d at %v, not after %v", i, u.At, updates[i-1].At)
		}
	}
}

func TestRouterMergesAggregatesAcrossShards(t *testing.T) {
	r := newTestRouter(t, Config{})
	sess, err := r.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageSub(t, sess, "SELECT MAX(light), AVG(temp) EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sub.QueryID() == 0 {
		t.Fatal("merged stream has no representative query id")
	}

	var updates []gateway.Update
	for i := 0; i < 4; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	if len(updates) < 2 {
		t.Fatalf("got %d merged updates after 5 quanta, want >= 2", len(updates))
	}
	checkStream(t, updates)
	for _, u := range updates {
		if len(u.Aggs) != 2 {
			t.Fatalf("merged update carries %d aggs, want MAX+AVG", len(u.Aggs))
		}
		if u.Aggs[0].Agg.Op != query.Max || u.Aggs[1].Agg.Op != query.Avg {
			t.Fatalf("downstream agg list = %v, want [MAX AVG]", u.Aggs)
		}
		if len(u.Rows) != 0 {
			t.Fatalf("aggregation update carries %d rows", len(u.Rows))
		}
	}

	st := r.FedStats()
	if st.Trees != 1 || st.UpstreamSubs != 2 {
		t.Fatalf("trees=%d upstreams=%d, want 1 tree fanned to 2 shards", st.Trees, st.UpstreamSubs)
	}
	if st.PartialUpdates < int64(len(updates))*2 {
		t.Fatalf("partials=%d for %d merged updates across 2 shards", st.PartialUpdates, len(updates))
	}
}

func TestRouterRoutesRegionPredicate(t *testing.T) {
	r := newTestRouter(t, Config{})
	sess, err := r.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Global sensors 4..6 live on shard 1 only.
	tk := stageSub(t, sess, "SELECT nodeid, light WHERE nodeid >= 4 EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st := r.FedStats(); st.UpstreamSubs != 1 {
		t.Fatalf("single-shard query fanned to %d upstreams", st.UpstreamSubs)
	}

	var updates []gateway.Update
	for i := 0; i < 4; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	checkStream(t, updates)
	rows := 0
	for _, u := range updates {
		for _, row := range u.Rows {
			rows++
			if row.Node < 4 || row.Node > 6 {
				t.Fatalf("row from node %d, want global ids 4..6", row.Node)
			}
			if v := row.Values[field.AttrNodeID]; v < 4 || v > 6 {
				t.Fatalf("projected nodeid %g not translated to global ids", v)
			}
		}
	}
	if rows == 0 {
		t.Fatal("no acquisition rows delivered")
	}
}

// TestRouterEmptyShardEpochReleasesWatermark: the merge watermark is
// time-based, not row-based. A spanned shard whose slice contributes zero
// rows in an epoch (here: a selective value filter that some epochs no
// node of shard 1 passes) must still release that epoch when its virtual
// clock passes — an empty contribution is not a stall, unlike a crashed
// or partitioned shard.
func TestRouterEmptyShardEpochReleasesWatermark(t *testing.T) {
	r := newTestRouter(t, Config{})
	sess, err := r.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	// nodeid >= 2 spans global sensors 2..6: nodes 2..3 on shard 0 and
	// 4..6 on shard 1. The light filter is selective enough that shard 1
	// has epochs with no qualifying rows while shard 0 still reports.
	tk := stageSub(t, sess, "SELECT nodeid, light WHERE nodeid >= 2 AND light >= 650 EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st := r.FedStats(); st.UpstreamSubs != 2 {
		t.Fatalf("query fanned to %d upstreams, want both shards spanned", st.UpstreamSubs)
	}

	var updates []gateway.Update
	for i := 0; i < 12; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	checkStream(t, updates)
	if len(updates) < 4 {
		t.Fatalf("got %d released epochs, want >= 4", len(updates))
	}

	// Find a released epoch carrying shard-0 rows but none from shard 1,
	// with later epochs released after it: proof the empty contribution
	// did not hold the watermark.
	emptyShard1 := -1
	for i, u := range updates {
		shard0, shard1 := 0, 0
		for _, row := range u.Rows {
			switch {
			case row.Node >= 2 && row.Node <= 3:
				shard0++
			case row.Node >= 4 && row.Node <= 6:
				shard1++
			default:
				t.Fatalf("row from node %d outside the queried region", row.Node)
			}
		}
		if shard0 > 0 && shard1 == 0 {
			emptyShard1 = i
			break
		}
	}
	if emptyShard1 < 0 {
		t.Fatal("no epoch with an empty shard-1 contribution surfaced; filter threshold needs retuning")
	}
	if emptyShard1 == len(updates)-1 {
		t.Fatalf("empty shard-1 epoch %d is the final release: nothing proves the watermark moved past it", emptyShard1)
	}

	st := r.FedStats()
	if st.MergedEpochs != int64(len(updates)) {
		t.Fatalf("merged epochs %d != released updates %d", st.MergedEpochs, len(updates))
	}
}

func TestRouterDedupAndTeardown(t *testing.T) {
	r := newTestRouter(t, Config{})
	alice, _ := r.Register("alice")
	bob, _ := r.Register("bob")
	ta := stageSub(t, alice, "SELECT light, temp EPOCH DURATION 8192ms")
	tb := stageSub(t, bob, "SELECT temp, light EPOCH DURATION 8.192s")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sa, err := ta.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sa.Key() != sb.Key() {
		t.Fatalf("canonical keys differ: %q vs %q", sa.Key(), sb.Key())
	}
	if sa.Shared() || !sb.Shared() {
		t.Fatalf("shared flags = %v/%v, want false/true", sa.Shared(), sb.Shared())
	}
	st := r.FedStats()
	if st.DedupHits != 1 || st.Trees != 1 || st.UpstreamSubs != 2 {
		t.Fatalf("dedup=%d trees=%d upstreams=%d, want 1/1/2", st.DedupHits, st.Trees, st.UpstreamSubs)
	}

	// Last unsubscribe tears the tree and its canonical upstreams down.
	ua, err := alice.UnsubscribeAsync(sa.ID())
	if err != nil {
		t.Fatal(err)
	}
	ub, err := bob.UnsubscribeAsync(sb.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	if _, err := ua.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := ub.Wait(); err != nil {
		t.Fatal(err)
	}
	if sa.Reason() != gateway.ReasonUnsubscribed {
		t.Fatalf("reason = %v, want unsubscribed", sa.Reason())
	}
	st = r.FedStats()
	if st.Trees != 0 || st.UpstreamSubs != 0 || st.ActiveSubscriptions != 0 {
		t.Fatalf("teardown left trees=%d upstreams=%d subs=%d", st.Trees, st.UpstreamSubs, st.ActiveSubscriptions)
	}
	// The shard gateways must have cancelled the canonical queries too.
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		gst, err := r.ShardStats(i)
		if err != nil {
			t.Fatal(err)
		}
		if gst.ActiveSubscriptions != 0 || gst.SharedQueries != 0 {
			t.Fatalf("shard %d keeps %d subs / %d queries after teardown",
				i, gst.ActiveSubscriptions, gst.SharedQueries)
		}
	}
}

func TestRouterCrashRecoverFailover(t *testing.T) {
	r := newTestRouter(t, Config{WALDir: t.TempDir()})
	sess, err := r.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageSub(t, sess, "SELECT MAX(light) EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var updates []gateway.Update
	for i := 0; i < 2; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	healthy := len(updates)

	if err := r.CrashShard(1); err != nil {
		t.Fatal(err)
	}
	if r.ShardAlive(1) {
		t.Fatal("shard 1 still alive after crash")
	}
	// The cross-shard tree stalls at the frozen watermark while shard 0
	// keeps advancing.
	for i := 0; i < 2; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	if len(updates) != healthy {
		t.Fatalf("stream advanced past the dead shard's watermark: %d -> %d updates",
			healthy, len(updates))
	}

	if err := r.RecoverShard(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	if len(updates) <= healthy {
		t.Fatalf("no progress after recovery: still %d updates", len(updates))
	}
	checkStream(t, updates)

	st := r.FedStats()
	if st.ShardCrashes != 1 || st.ShardRecoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", st.ShardCrashes, st.ShardRecoveries)
	}
	if st.UpstreamResumes == 0 {
		t.Fatal("recovery resumed no upstream streams")
	}
}

func TestRouterPartitionHeal(t *testing.T) {
	r := newTestRouter(t, Config{})
	sess, err := r.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageSub(t, sess, "SELECT MIN(temp) EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var updates []gateway.Update
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	drain(sub.Updates(), &updates)
	before := len(updates)

	if err := r.PartitionShard(0); err != nil {
		t.Fatal(err)
	}
	// New cross-shard trees cannot establish canonical upstreams while a
	// planned shard is unreachable.
	tk2 := stageSub(t, sess, "SELECT SUM(light) EPOCH DURATION 8192ms")
	for i := 0; i < 2; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	if _, err := tk2.Wait(); err == nil {
		t.Fatal("subscribe across a partitioned shard must fail")
	}
	if len(updates) != before {
		t.Fatalf("stream advanced past the partitioned shard's watermark: %d -> %d",
			before, len(updates))
	}

	if err := r.HealShard(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
		drain(sub.Updates(), &updates)
	}
	if len(updates) <= before {
		t.Fatalf("no progress after heal: still %d updates", len(updates))
	}
	checkStream(t, updates)

	st := r.FedStats()
	if st.Partitions != 1 || st.Heals != 1 {
		t.Fatalf("partitions=%d heals=%d, want 1/1", st.Partitions, st.Heals)
	}
	if st.UpstreamResumes == 0 {
		t.Fatal("heal resumed no upstream streams")
	}

	// The healed fleet serves new subscriptions again.
	tk3 := stageSub(t, sess, "SELECT SUM(light) EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	if _, err := tk3.Wait(); err != nil {
		t.Fatalf("subscribe after heal: %v", err)
	}
}

func TestRouterRegisterHomesOnRing(t *testing.T) {
	r := newTestRouter(t, Config{WALDir: t.TempDir()})
	// Find one name per home shard.
	names := map[int]string{}
	for i := 0; len(names) < 2; i++ {
		name := "client-" + string(rune('a'+i))
		names[r.HomeShard(name)] = name
	}
	if err := r.CrashShard(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(names[1]); err == nil {
		t.Fatal("registration homed on a dead shard must fail")
	}
	if _, err := r.Register(names[0]); err != nil {
		t.Fatalf("registration on the surviving shard failed: %v", err)
	}
}

func TestRouterDetachResumeDownstream(t *testing.T) {
	r := newTestRouter(t, Config{})
	sess, err := r.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	token := sess.Token()
	tk := stageSub(t, sess, "SELECT COUNT(light) EPOCH DURATION 8192ms")
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var updates []gateway.Update
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	drain(sub.Updates(), &updates)
	seen := uint64(0)
	if n := len(updates); n > 0 {
		seen = updates[n-1].Seq
	}

	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if sub.Reason() != gateway.ReasonDetached {
		t.Fatalf("reason = %v, want detached", sub.Reason())
	}
	// Updates keep flowing into the parked ring while detached.
	for i := 0; i < 2; i++ {
		if _, err := r.Advance(testQuantum); err != nil {
			t.Fatal(err)
		}
	}

	s2, infos, err := r.Attach("alice", token)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != sub.ID() {
		t.Fatalf("resume infos = %+v, want the one parked stream", infos)
	}
	revived, err := s2.Resume(infos[0].ID, seen)
	if err != nil {
		t.Fatal(err)
	}
	drain(revived.Updates(), &updates)
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	drain(revived.Updates(), &updates)
	if uint64(len(updates)) == seen {
		t.Fatal("no updates replayed or delivered after resume")
	}
	checkStream(t, updates)
}

func TestRouterServeStatsAggregates(t *testing.T) {
	r := newTestRouter(t, Config{Shards: 3})
	for _, name := range []string{"a", "b", "c"} {
		if _, err := r.Register(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Advance(testQuantum); err != nil {
		t.Fatal(err)
	}
	st, now, err := r.ServeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 3 || st.ActiveSessions != 3 {
		t.Fatalf("sessions=%d active=%d, want 3/3", st.Sessions, st.ActiveSessions)
	}
	if now != sim.Time(testQuantum) {
		t.Fatalf("virtual now = %v, want %v", now, testQuantum)
	}
	if r.MergeLatency() <= 0 {
		t.Fatal("merge latency not recorded")
	}
}
