// Package resilience holds the serving tier's overload-protection
// primitives: the typed overload rejection with a retry hint, a
// deterministic circuit breaker counted in observation rounds, the
// brownout degradation ladder, and capped exponential backoff with full
// jitter for retrying clients.
//
// Everything here is deliberately free of wall-clock reads: the breaker
// and the brownout ladder advance one step per observation (one per
// gateway/router Advance), so chaos drills and determinism tests can step
// them in virtual time, and the same run always trips, probes and
// recovers on the same rounds.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrOverloaded is the sentinel every OverloadError matches via
// errors.Is: callers switch on the class ("the tier shed my work; back
// off and retry") without caring which limit fired.
var ErrOverloaded = errors.New("overloaded")

// OverloadError is a typed admission rejection: the serving tier shed
// the work to protect itself and the client should retry after the hint.
type OverloadError struct {
	// RetryAfter is the server's backoff hint; clients must treat it as a
	// floor under their own jittered delay.
	RetryAfter time.Duration
	// Reason names the limit that fired ("queue", "deadline", "subs",
	// "brownout").
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("overloaded (%s): retry after %s", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// RetryAfterHint extracts the retry-after floor from an error chain;
// zero when the chain carries no OverloadError.
func RetryAfterHint(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// ---------------------------------------------------------------------------
// Circuit breaker

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState uint8

const (
	// BreakerClosed: traffic flows; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused while the cooldown runs down.
	BreakerOpen
	// BreakerHalfOpen: one probe is allowed; its outcome decides.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Breaker defaults.
const (
	DefaultTripAfter = 3
	DefaultCooldown  = 4
)

// BreakerConfig parametrizes a Breaker. Both knobs count observation
// rounds, not wall time — the owner observes once per Advance.
type BreakerConfig struct {
	// TripAfter is the consecutive-failure count that opens the breaker
	// (DefaultTripAfter if <= 0).
	TripAfter int
	// Cooldown is how many rounds the breaker stays open before allowing
	// a half-open probe (DefaultCooldown if <= 0).
	Cooldown int
}

// Breaker is a deterministic per-dependency circuit breaker. It is not
// safe for concurrent use; the owning actor loop drives it.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	cooldown int

	// Trips/Probes/Recoveries are cumulative transition counters for
	// telemetry.
	Trips      int64
	Probes     int64
	Recoveries int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.TripAfter <= 0 {
		cfg.TripAfter = DefaultTripAfter
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	return &Breaker{cfg: cfg}
}

// State returns the current state.
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether the owner should attempt the dependency this
// round: always in closed, once per probe window in half-open, never
// while open.
func (b *Breaker) Allow() bool { return b.state != BreakerOpen }

// Observe records one round's outcome. While open, the round counts
// against the cooldown regardless of ok (the owner is not talking to the
// dependency); the breaker moves to half-open when the cooldown expires.
func (b *Breaker) Observe(ok bool) {
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.TripAfter {
			b.trip()
		}
	case BreakerOpen:
		b.cooldown--
		if b.cooldown <= 0 {
			b.state = BreakerHalfOpen
			b.Probes++
		}
	case BreakerHalfOpen:
		if ok {
			b.state = BreakerClosed
			b.fails = 0
			b.Recoveries++
			return
		}
		b.trip()
	}
}

func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.cooldown = b.cfg.Cooldown
	b.Trips++
}

// ---------------------------------------------------------------------------
// Brownout ladder

// Level is a rung on the brownout degradation ladder. Under sustained
// pressure the serve tier sheds in this fixed order; recovery descends
// the same rungs in reverse.
type Level uint8

const (
	// LevelNormal: full service.
	LevelNormal Level = iota
	// LevelNoReplay: cache replay to late subscribers is off (they wait
	// for live epochs instead of an immediate warm window).
	LevelNoReplay
	// LevelBatching: fan-out batching doubles up — the pacer coalesces
	// ticks into bigger Advances so per-burst flush batching amortizes
	// more writes per syscall.
	LevelBatching
	// LevelShed: new admissions are rejected with ErrOverloaded.
	LevelShed
)

func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelNoReplay:
		return "no-replay"
	case LevelBatching:
		return "batching"
	case LevelShed:
		return "shed"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Brownout defaults: escalating is quick (two pressured rounds per
// rung), recovering deliberately slower (four calm rounds per rung) so
// the ladder doesn't flap around the pressure threshold.
const (
	DefaultEscalateAfter = 2
	DefaultRecoverAfter  = 4
)

// BrownoutConfig parametrizes the ladder's hysteresis, in observation
// rounds.
type BrownoutConfig struct {
	EscalateAfter int // consecutive pressured rounds per rung up
	RecoverAfter  int // consecutive calm rounds per rung down
}

// Brownout tracks the ladder. Not safe for concurrent use; the owning
// actor loop observes once per Advance and publishes the level through
// an atomic of its own.
type Brownout struct {
	cfg   BrownoutConfig
	level Level
	hot   int
	calm  int

	// Escalations/Recoveries count rung transitions for telemetry.
	Escalations int64
	Recoveries  int64
}

// NewBrownout returns a ladder at LevelNormal.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	if cfg.EscalateAfter <= 0 {
		cfg.EscalateAfter = DefaultEscalateAfter
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = DefaultRecoverAfter
	}
	return &Brownout{cfg: cfg}
}

// Level returns the current rung.
func (b *Brownout) Level() Level { return b.level }

// Observe records one round's pressure reading and returns the (possibly
// changed) level.
func (b *Brownout) Observe(pressured bool) Level {
	if pressured {
		b.calm = 0
		b.hot++
		if b.hot >= b.cfg.EscalateAfter && b.level < LevelShed {
			b.level++
			b.hot = 0
			b.Escalations++
		}
		return b.level
	}
	b.hot = 0
	b.calm++
	if b.calm >= b.cfg.RecoverAfter && b.level > LevelNormal {
		b.level--
		b.calm = 0
		b.Recoveries++
	}
	return b.level
}

// ---------------------------------------------------------------------------
// Client backoff

// Backoff computes capped exponential backoff with full jitter: the
// delay for attempt n is uniform over [0, min(Cap, Base<<n)], then
// floored by the server's retry-after hint if one was given. Full jitter
// decorrelates a thundering herd of rejected clients — the whole point
// of handing out retry-afters in the first place.
type Backoff struct {
	// Base is attempt 0's maximum delay (DefaultBackoffBase if <= 0).
	Base time.Duration
	// Cap bounds the exponential growth (DefaultBackoffCap if <= 0).
	Cap time.Duration
	// Rand supplies the jitter in [0, 1); rand.Float64 when nil. Tests
	// inject a fixed source for reproducible schedules.
	Rand func() float64
}

// Backoff defaults.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

// Delay returns the jittered delay for the given attempt (0-based),
// floored by the server-provided retry-after hint.
func (b Backoff) Delay(attempt int, floor time.Duration) time.Duration {
	base := b.Base
	if base <= 0 {
		base = DefaultBackoffBase
	}
	cap := b.Cap
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	max := base
	for i := 0; i < attempt && max < cap; i++ {
		max *= 2
	}
	if max > cap {
		max = cap
	}
	rnd := b.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	d := time.Duration(rnd() * float64(max))
	if d < floor {
		d = floor
	}
	return d
}
