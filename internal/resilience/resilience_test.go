package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestOverloadErrorIsTyped(t *testing.T) {
	var err error = fmt.Errorf("subscribe: %w",
		&OverloadError{RetryAfter: 250 * time.Millisecond, Reason: "queue"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("wrapped OverloadError does not match ErrOverloaded")
	}
	if got := RetryAfterHint(err); got != 250*time.Millisecond {
		t.Fatalf("RetryAfterHint = %v, want 250ms", got)
	}
	if RetryAfterHint(errors.New("other")) != 0 {
		t.Fatalf("RetryAfterHint on unrelated error should be zero")
	}
}

func TestBreakerTripProbeRecover(t *testing.T) {
	br := NewBreaker(BreakerConfig{TripAfter: 3, Cooldown: 2})
	if br.State() != BreakerClosed || !br.Allow() {
		t.Fatalf("fresh breaker should be closed and allowing")
	}
	// Two failures: still closed. A success resets the streak.
	br.Observe(false)
	br.Observe(false)
	br.Observe(true)
	br.Observe(false)
	br.Observe(false)
	if br.State() != BreakerClosed {
		t.Fatalf("streak should have reset; state=%v", br.State())
	}
	br.Observe(false)
	if br.State() != BreakerOpen || br.Allow() {
		t.Fatalf("three consecutive failures should trip; state=%v", br.State())
	}
	if br.Trips != 1 {
		t.Fatalf("Trips = %d, want 1", br.Trips)
	}
	// Cooldown runs in observation rounds.
	br.Observe(false)
	if br.State() != BreakerOpen {
		t.Fatalf("one cooldown round should not half-open yet")
	}
	br.Observe(false)
	if br.State() != BreakerHalfOpen || !br.Allow() {
		t.Fatalf("cooldown expiry should half-open; state=%v", br.State())
	}
	// Failed probe re-opens; successful probe after a second cooldown closes.
	br.Observe(false)
	if br.State() != BreakerOpen || br.Trips != 2 {
		t.Fatalf("failed probe should re-trip; state=%v trips=%d", br.State(), br.Trips)
	}
	br.Observe(false)
	br.Observe(false)
	br.Observe(true)
	if br.State() != BreakerClosed || br.Recoveries != 1 {
		t.Fatalf("successful probe should close; state=%v recoveries=%d", br.State(), br.Recoveries)
	}
}

func TestBrownoutLadderHysteresis(t *testing.T) {
	b := NewBrownout(BrownoutConfig{EscalateAfter: 2, RecoverAfter: 3})
	if b.Level() != LevelNormal {
		t.Fatalf("fresh ladder should be normal")
	}
	// Escalate one rung per two pressured rounds, through the fixed order.
	want := []Level{LevelNormal, LevelNoReplay, LevelNoReplay, LevelBatching,
		LevelBatching, LevelShed, LevelShed, LevelShed}
	for i, w := range want {
		if got := b.Observe(true); got != w {
			t.Fatalf("round %d: level = %v, want %v", i, got, w)
		}
	}
	// One calm round does not descend; three do, one rung at a time.
	if got := b.Observe(false); got != LevelShed {
		t.Fatalf("single calm round should not recover; got %v", got)
	}
	b.Observe(false)
	if got := b.Observe(false); got != LevelBatching {
		t.Fatalf("three calm rounds should step down once; got %v", got)
	}
	// A pressured round resets the calm streak.
	b.Observe(false)
	b.Observe(false)
	b.Observe(true)
	if got := b.Observe(false); got != LevelBatching {
		t.Fatalf("pressure should reset the recovery streak; got %v", got)
	}
	if b.Escalations != 3 || b.Recoveries != 1 {
		t.Fatalf("transitions = %d/%d, want 3 escalations, 1 recovery", b.Escalations, b.Recoveries)
	}
}

func TestBackoffFullJitterCapAndFloor(t *testing.T) {
	// Rand pinned to the top of the range: delays are exactly the capped
	// exponential envelope.
	hi := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond,
		Rand: func() float64 { return 0.999999 }}
	prev := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := hi.Delay(attempt, 0)
		if d < prev {
			t.Fatalf("attempt %d: delay %v shrank below %v", attempt, d, prev)
		}
		if d > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, d)
		}
		prev = d
	}
	if prev < 79*time.Millisecond {
		t.Fatalf("late attempts should approach the cap; got %v", prev)
	}
	// Rand pinned low: the server's retry-after floor still holds.
	lo := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond,
		Rand: func() float64 { return 0 }}
	if d := lo.Delay(0, 25*time.Millisecond); d != 25*time.Millisecond {
		t.Fatalf("floor not honored: %v", d)
	}
	// Defaults apply on the zero value.
	var def Backoff
	if d := def.Delay(20, 0); d > DefaultBackoffCap {
		t.Fatalf("zero-value backoff exceeded the default cap: %v", d)
	}
}
