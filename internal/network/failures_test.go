package network

import (
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/topology"
)

// chainTopo builds BS—1—2—3 (each node only reaches its neighbors), so a
// mid-chain failure partitions the tail.
func chainTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New([]topology.Point{{X: 0}, {X: 40}, {X: 80}, {X: 120}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// diamondTopo builds BS with two level-1 relays and one level-2 leaf that
// reaches both, so the leaf can fail over between them.
func diamondTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New([]topology.Point{
		{X: 0, Y: 0},    // BS
		{X: 40, Y: 15},  // relay 1 (closer to leaf)
		{X: 40, Y: -20}, // relay 2
		{X: 75, Y: 0},   // leaf, in range of both relays
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFailedNodeStopsTransmitting(t *testing.T) {
	s := newSim(t, chainTopo(t), Baseline, 1)
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Second)
	s.FailNode(3)
	before := s.Metrics().MessagesFrom("result", 3)
	s.Run(20 * time.Second)
	if got := s.Metrics().MessagesFrom("result", 3); got != before {
		t.Fatalf("failed node kept transmitting: %d -> %d", before, got)
	}
	if s.Failures() != 1 {
		t.Fatalf("failures = %d", s.Failures())
	}
	if !s.Node(3).Down() {
		t.Fatal("node should report down")
	}
}

func TestFailoverToAlternateParent(t *testing.T) {
	topo := diamondTopo(t)
	s := newSim(t, topo, InNetworkOnly, 2)
	q := query.MustParse("SELECT nodeid, light EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * time.Second)
	baseline := len(s.Results().RowsFor(1))
	if baseline == 0 {
		t.Fatal("no epochs before failure")
	}

	// Kill the leaf's preferred relay; the leaf must reroute via the other.
	s.FailNode(1)
	s.Run(30 * time.Second)
	epochs := s.Results().RowsFor(1)
	// Find a recent epoch and confirm the leaf's row still arrives.
	last := epochs[len(epochs)-1]
	found := false
	for _, r := range last.Rows {
		if r.Node == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("leaf's row lost after relay failure: %+v", last.Rows)
	}
	// Relay 2 must now be carrying traffic.
	if s.Metrics().MessagesFrom("result", 2) == 0 {
		t.Fatal("alternate relay carried no traffic")
	}
}

func TestReviveRestoresAndRepairs(t *testing.T) {
	topo := chainTopo(t)
	s, err := New(Config{
		Topo:                topo,
		Scheme:              Baseline,
		Seed:                3,
		MaintenanceInterval: 10 * time.Second, // anti-entropy carrier
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fail node 3 BEFORE the query is injected: it misses the flood.
	s.FailNode(3)
	q := query.MustParse("SELECT nodeid, light EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Second)
	if got := s.Node(3).Queries(); len(got) != 0 {
		t.Fatalf("down node installed a query: %v", got)
	}
	// Revive: within a maintenance interval the beacon digest repair
	// re-teaches the query.
	s.ReviveNode(3)
	s.Run(60 * time.Second)
	if got := s.Node(3).Queries(); len(got) != 1 {
		t.Fatalf("anti-entropy did not repair the revived node: %v", got)
	}
	// And its rows flow again.
	epochs := s.Results().RowsFor(1)
	last := epochs[len(epochs)-1]
	found := false
	for _, r := range last.Rows {
		if r.Node == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("revived node's rows missing: %+v", last.Rows)
	}
}

func TestAntiEntropyRepairsMissedAbort(t *testing.T) {
	topo := chainTopo(t)
	s, err := New(Config{
		Topo:                topo,
		Scheme:              Baseline,
		Seed:                4,
		MaintenanceInterval: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Second)
	// Node 3 misses the abort while down.
	s.FailNode(3)
	s.Run(6 * time.Second)
	if err := s.Cancel(1); err != nil {
		t.Fatal(err)
	}
	s.Run(12 * time.Second)
	s.ReviveNode(3)
	if got := s.Node(3).Queries(); len(got) != 1 {
		t.Fatalf("precondition: revived node should still hold the stale query, got %v", got)
	}
	s.Run(60 * time.Second)
	if got := s.Node(3).Queries(); len(got) != 0 {
		t.Fatalf("anti-entropy did not abort the stale query: %v", got)
	}
}

func TestRandomFailuresKeepRunning(t *testing.T) {
	topo := grid4(t)
	s, err := New(Config{
		Topo:   topo,
		Scheme: TTMQO,
		Seed:   5,
		Failures: FailureConfig{
			MTBF: 60 * time.Second,
			MTTR: 10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("SELECT nodeid, light EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Minute)
	if s.Failures() == 0 {
		t.Fatal("no failures occurred")
	}
	epochs := s.Results().RowsFor(1)
	if len(epochs) < 60 {
		t.Fatalf("only %d epochs delivered under churn", len(epochs))
	}
	// Despite failures, most rows still arrive: average ≥ 60% of sensors.
	total := 0
	for _, ep := range epochs {
		total += len(ep.Rows)
	}
	avg := float64(total) / float64(len(epochs))
	if avg < 0.6*float64(topo.Size()-1) {
		t.Fatalf("average rows per epoch = %.1f of %d", avg, topo.Size()-1)
	}
}

func TestManualFaultInjectionIsIdempotent(t *testing.T) {
	// Chaos schedules compose (a region cut can overlap node churn), so
	// double-failing must count one outage and double-reviving must be a
	// no-op — otherwise overlapping scenarios inflate the failure counter
	// or resurrect nodes that a second schedule still holds down.
	s := newSim(t, chainTopo(t), Baseline, 1)
	s.FailNode(2)
	s.FailNode(2)
	if s.Failures() != 1 {
		t.Fatalf("double FailNode counted %d failures, want 1", s.Failures())
	}
	if !s.Node(2).Down() {
		t.Fatal("node 2 should be down")
	}
	s.ReviveNode(2)
	s.ReviveNode(2)
	if s.Node(2).Down() {
		t.Fatal("node 2 should be up after revive")
	}
	if s.Failures() != 1 {
		t.Fatalf("revive disturbed the failure counter: %d", s.Failures())
	}
	// Reviving a node that never failed is a no-op too.
	s.ReviveNode(3)
	if s.Node(3).Down() || s.Failures() != 1 {
		t.Fatalf("spurious revive changed state: down=%v failures=%d",
			s.Node(3).Down(), s.Failures())
	}

	// Region cut overlapping an existing single-node outage: the shared
	// node is not double-counted, and healing restores every member once.
	s.FailNode(3)
	if s.Failures() != 2 {
		t.Fatalf("failures = %d, want 2", s.Failures())
	}
	ids := s.FailRegion(2) // subtree 2..3 includes the already-down 3
	if len(ids) != 2 {
		t.Fatalf("FailRegion(2) affected %v, want nodes 2..3", ids)
	}
	if s.Failures() != 3 {
		t.Fatalf("overlapping region cut counted %d failures, want 3", s.Failures())
	}
	healed := s.HealRegion(2)
	if len(healed) != 2 {
		t.Fatalf("HealRegion(2) affected %v", healed)
	}
	for _, id := range healed {
		if s.Node(id).Down() {
			t.Fatalf("node %d still down after heal", id)
		}
	}
	if s.HealRegion(2); s.Failures() != 3 {
		t.Fatalf("double heal disturbed the failure counter: %d", s.Failures())
	}
}
