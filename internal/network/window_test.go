package network

import (
	"math"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/topology"
)

// Windowed aggregates end to end: every node's reported WINAVG matches the
// average recomputed from the field at its own sample instants.
func TestWindowedEndToEnd(t *testing.T) {
	topo := grid4(t)
	for _, scheme := range []Scheme{Baseline, TTMQO} {
		s := newSim(t, topo, scheme, 14)
		q := query.MustParse("SELECT WINAVG(light, 4) EPOCH DURATION 4096")
		q.ID = 1
		if _, err := s.Post(q); err != nil {
			t.Fatal(err)
		}
		s.Run(60 * time.Second)
		epochs := s.Results().RowsFor(1)
		if len(epochs) < 8 {
			t.Fatalf("%v: %d epochs", scheme, len(epochs))
		}
		// Check the last epoch: full windows everywhere.
		last := epochs[len(epochs)-1]
		if len(last.Rows) != topo.Size()-1 {
			t.Fatalf("%v: %d rows, want %d", scheme, len(last.Rows), topo.Size()-1)
		}
		for _, r := range last.Rows {
			var want float64
			for k := 0; k < 4; k++ {
				at := last.Time - sim4096(k)
				want += s.source.Reading(r.Node, field.AttrLight, at)
			}
			want /= 4
			got := r.Values[field.AttrLight]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v node %d: WINAVG = %f, want %f", scheme, r.Node, got, want)
			}
		}
	}
}

func sim4096(k int) (d time.Duration) {
	return time.Duration(k) * 4096 * time.Millisecond
}

// Slide > 1: reports every Slide epochs only.
func TestWindowedSlideSchedule(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, TTMQO, 15)
	q := query.MustParse("SELECT WINMAX(temp, 4, 3) EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Minute)
	epochs := s.Results().RowsFor(1)
	if len(epochs) < 3 {
		t.Fatalf("%d epochs", len(epochs))
	}
	re := 3 * 4096 * time.Millisecond
	for i, ep := range epochs {
		if time.Duration(ep.Time)%re != 0 {
			t.Fatalf("report %d at %v not on the slide schedule %v", i, ep.Time, re)
		}
		if i > 0 && time.Duration(ep.Time-epochs[i-1].Time) != re {
			t.Fatalf("report spacing %v, want %v", time.Duration(ep.Time-epochs[i-1].Time), re)
		}
	}
	// Message volume reflects the slide: result traffic is ~1/3 of a
	// slide-1 query's.
	s1 := newSim(t, topo, TTMQO, 15)
	q1 := query.MustParse("SELECT WINMAX(temp, 4) EPOCH DURATION 4096")
	q1.ID = 1
	if _, err := s1.Post(q1); err != nil {
		t.Fatal(err)
	}
	s1.Run(2 * time.Minute)
	r3 := s.Metrics().MessagesOf("result")
	r1 := s1.Metrics().MessagesOf("result")
	if r3 >= r1/2 {
		t.Fatalf("slide-3 traffic %d vs slide-1 %d: expected ≈3x reduction", r3, r1)
	}
}

// Two compatible windowed queries merge at tier 1 and both receive results.
func TestWindowedTier1Merge(t *testing.T) {
	s := newSim(t, grid4(t), TTMQO, 16)
	q1 := query.MustParse("SELECT WINAVG(light, 4, 2) WHERE temp > 10 EPOCH DURATION 4096")
	q1.ID = 1
	q2 := query.MustParse("SELECT WINMAX(humidity, 8, 4) WHERE temp > 10 EPOCH DURATION 4096")
	q2.ID = 2
	if _, err := s.Post(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Post(q2); err != nil {
		t.Fatal(err)
	}
	if s.Optimizer().SyntheticCount() != 1 {
		t.Fatalf("synthetic count = %d, want 1", s.Optimizer().SyntheticCount())
	}
	syn := s.Optimizer().SyntheticQueries()[0]
	if !syn.IsWindowed() || len(syn.Wins) != 2 {
		t.Fatalf("synthetic = %v", syn)
	}
	s.Run(3 * time.Minute)
	n1, n2 := s.Results().RowEpochs(1), s.Results().RowEpochs(2)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("epochs: q1=%d q2=%d", n1, n2)
	}
	// q1 reports twice as often as q2 (slides 2 vs 4 on the same epoch).
	if n1 < 2*n2-2 || n1 > 2*n2+2 {
		t.Fatalf("slide decimation off: q1=%d q2=%d", n1, n2)
	}
	// q2's rows carry only its own attribute.
	for _, ep := range s.Results().RowsFor(2) {
		for _, r := range ep.Rows {
			if _, ok := r.Values[field.AttrLight]; ok {
				t.Fatal("q2 must not see q1's window values")
			}
			if _, ok := r.Values[field.AttrHumidity]; !ok {
				t.Fatal("q2 missing its window value")
			}
		}
	}
}

// A windowed query's predicate gates reporting per node.
func TestWindowedPredicateGatesReports(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, Baseline, 17)
	// nodeid <= 5: only nodes 1..5 report.
	q := query.MustParse("SELECT WINAVG(light, 2) WHERE nodeid <= 5 EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)
	for _, ep := range s.Results().RowsFor(1) {
		if len(ep.Rows) != 5 {
			t.Fatalf("rows = %d, want 5", len(ep.Rows))
		}
		for _, r := range ep.Rows {
			if r.Node > 5 {
				t.Fatalf("node %d should be filtered", r.Node)
			}
		}
	}
}

// SRT prunes windowed node-id queries too (they ride the same machinery).
func TestWindowedSRTPruning(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, Baseline, 18)
	q := query.MustParse("SELECT WINAVG(light, 2) WHERE nodeid = 1 EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Minute)
	// Some node with a non-overlapping subtree must have pruned the flood.
	pruned := 0
	for i := 1; i < topo.Size(); i++ {
		if len(s.Node(topology.NodeID(i)).Queries()) == 0 {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("expected SRT pruning")
	}
	for _, ep := range s.Results().RowsFor(1) {
		if len(ep.Rows) != 1 || ep.Rows[0].Node != 1 {
			t.Fatalf("rows = %+v", ep.Rows)
		}
	}
}
