package network

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/trace"
)

// A failed batch must not leave partial injections in the network: the
// InsertBatch error is checked before its change set is applied.
func TestPostBatchErrorFloodsNothing(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, TTMQO, 3)
	// The second query duplicates the first's explicit ID, so admission
	// fails after the first query was already merged by the optimizer.
	q1 := query.MustParse("SELECT light EPOCH DURATION 4096")
	q1.ID = 7
	q2 := query.MustParse("SELECT temp EPOCH DURATION 4096")
	q2.ID = 7
	if _, err := s.PostBatch([]query.Query{q1, q2}); err == nil {
		t.Fatal("duplicate-ID batch must error")
	}
	s.Run(10 * time.Second)
	if n := s.Metrics().MessagesOf("query"); n != 0 {
		t.Fatalf("failed batch flooded %d query messages, want 0", n)
	}
	if len(s.installed) != 0 {
		t.Fatalf("failed batch left %d installed queries", len(s.installed))
	}
	// An invalid query anywhere in the batch is caught up front, too.
	bad := query.Query{} // no attributes, no epoch: fails Validate
	if _, err := s.PostBatch([]query.Query{query.MustParse("SELECT light EPOCH DURATION 4096"), bad}); err == nil {
		t.Fatal("batch with invalid query must error")
	}
	s.Run(10 * time.Second)
	if n := s.Metrics().MessagesOf("query"); n != 0 {
		t.Fatalf("invalid batch flooded %d query messages, want 0", n)
	}

	// The optimizer-level failure path: a batch member colliding with an
	// already-live query fails InsertBatch *after* earlier members were
	// admitted; the partial change set must still not reach the network.
	s2 := newSim(t, topo, TTMQO, 3)
	live := query.MustParse("SELECT light EPOCH DURATION 4096")
	live.ID = 7
	if _, err := s2.Post(live); err != nil {
		t.Fatal(err)
	}
	s2.Run(5 * time.Second)
	flooded := s2.Metrics().MessagesOf("query")
	fresh := query.MustParse("SELECT temp EPOCH DURATION 4096")
	dup := query.MustParse("SELECT humidity EPOCH DURATION 4096")
	dup.ID = 7
	if _, err := s2.PostBatch([]query.Query{fresh, dup}); err == nil {
		t.Fatal("batch colliding with a live query must error")
	}
	s2.Run(10 * time.Second)
	if n := s2.Metrics().MessagesOf("query"); n != flooded {
		t.Fatalf("failed batch flooded %d extra query messages", n-flooded)
	}
	if len(s2.installed) != 1 {
		t.Fatalf("installed queries = %d, want only the pre-existing one", len(s2.installed))
	}
}

// Cancelling an unknown or already-expired query must not emit a cancel
// trace event (covers a LIFETIME auto-cancel racing a manual cancel).
func TestCancelUnknownEmitsNoTrace(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, TTMQO} {
		buf := &trace.Buffer{}
		s, err := New(Config{
			Topo:                grid4(t),
			Scheme:              scheme,
			Seed:                5,
			MaintenanceInterval: -1,
			Trace:               buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Cancel(99); err == nil {
			t.Fatalf("%v: cancel of unknown query must error", scheme)
		}
		if n := buf.CountByKind()[trace.KindCancel]; n != 0 {
			t.Fatalf("%v: failed cancel emitted %d cancel events, want 0", scheme, n)
		}
		// A real cancel still traces exactly once.
		q := query.MustParse("SELECT light EPOCH DURATION 4096")
		id, err := s.Post(q)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(5 * time.Second)
		if err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
		if n := buf.CountByKind()[trace.KindCancel]; n != 1 {
			t.Fatalf("%v: cancel events = %d, want 1", scheme, n)
		}
	}
}

func TestManifestIdentifiesRun(t *testing.T) {
	s := newSim(t, grid4(t), TTMQO, 42)
	m := s.Manifest()
	if m.Tool != "ttmqo" || m.Version == "" {
		t.Fatalf("manifest tool identity missing: %+v", m)
	}
	if m.Scheme != "ttmqo" || m.Seed != 42 || m.Nodes != 16 {
		t.Fatalf("manifest fields wrong: %+v", m)
	}
	if m.ConfigHash == "" {
		t.Fatal("manifest must carry a config hash")
	}
	// Different seeds hash differently; same config hashes identically.
	if s2 := newSim(t, grid4(t), TTMQO, 43); s2.Manifest().ConfigHash == m.ConfigHash {
		t.Fatal("different seeds must produce different config hashes")
	}
	if s3 := newSim(t, grid4(t), TTMQO, 42); s3.Manifest() != m {
		t.Fatal("identical configs must produce identical manifests")
	}
}

func TestSeriesSamplesRun(t *testing.T) {
	s := newSim(t, grid4(t), TTMQO, 11)
	ser := s.StartSeries(10 * time.Second)
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(60 * time.Second)

	// t=0 plus one sample per 10s interval.
	if ser.Len() != 7 {
		t.Fatalf("samples = %d, want 7", ser.Len())
	}
	first, last := ser.Samples[0], ser.Samples[len(ser.Samples)-1]
	if first.AtMS != 0 || last.AtMS != 60_000 {
		t.Fatalf("sample timestamps wrong: first=%d last=%d", first.AtMS, last.AtMS)
	}
	if last.Messages == 0 || last.TxTotalMS == 0 {
		t.Fatalf("final sample recorded no radio activity: %+v", last)
	}
	if last.UserQueries != 1 || last.SyntheticQueries != 1 || last.InstalledQueries != 1 {
		t.Fatalf("optimizer state wrong in sample: %+v", last)
	}
	if last.RowEpochs == 0 || last.RowsDelivered == 0 {
		t.Fatalf("no deliveries sampled: %+v", last)
	}
	if len(last.NodeTxMS) != 16 {
		t.Fatalf("per-node trajectory has %d entries, want 16", len(last.NodeTxMS))
	}
	// Monotone cumulative counters.
	for i := 1; i < len(ser.Samples); i++ {
		if ser.Samples[i].Messages < ser.Samples[i-1].Messages {
			t.Fatalf("messages not monotone at sample %d", i)
		}
	}
}

// The series CSV is a pure function of the run configuration: two identical
// runs export identical bytes.
func TestSeriesCSVDeterministic(t *testing.T) {
	runOnce := func() []byte {
		s := newSim(t, grid4(t), TTMQO, 17)
		ser := s.StartSeries(15 * time.Second)
		q := query.MustParse("SELECT light, temp WHERE light > 200 EPOCH DURATION 4096")
		if _, err := s.Post(q); err != nil {
			t.Fatal(err)
		}
		s.Run(90 * time.Second)
		var buf bytes.Buffer
		if err := ser.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		var nodeBuf bytes.Buffer
		if err := ser.WriteNodeCSV(&nodeBuf); err != nil {
			t.Fatal(err)
		}
		return append(buf.Bytes(), nodeBuf.Bytes()...)
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatal("series CSV differs between identical runs")
	}
}
