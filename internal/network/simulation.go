package network

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config parametrizes a simulation run.
type Config struct {
	// Topo is the deployment; required.
	Topo *topology.Topology
	// Scheme selects the optimization tiers; required.
	Scheme Scheme
	// Seed drives every random choice (field, jitter, collisions).
	Seed int64
	// Alpha is the tier-1 termination parameter (core.DefaultAlpha if 0).
	Alpha float64
	// Source overrides the sensed field (defaults to a correlated
	// field.Field seeded from Seed).
	Source field.Source
	// Radio tunes the medium; zero values take radio defaults.
	Radio radio.Config
	// MaintenanceInterval is the network-maintenance beacon period; zero
	// means DefaultMaintenanceInterval, negative disables maintenance.
	MaintenanceInterval time.Duration
	// PolicyOverride replaces the scheme's tier-2 policy (ablations).
	PolicyOverride *node.Policy
	// DiscardResults disables user-result retention for long metric-only
	// runs.
	DiscardResults bool
	// Failures injects node outages (zero value disables them).
	Failures FailureConfig
	// Trace, when set, records a structured event log of the run.
	Trace *trace.Buffer
}

// DefaultMaintenanceInterval is the beacon period.
const DefaultMaintenanceInterval = 30 * time.Second

// installedQuery is a network query (synthetic or raw user) the base
// station is currently collecting results for.
type installedQuery struct {
	q     query.Query
	start sim.Time
	flush sim.Handle
}

type bufKey struct {
	qid    query.ID
	epochT sim.Time
}

// epochBuffer accumulates one epoch's worth of arrivals for one query.
type epochBuffer struct {
	rows   map[topology.NodeID]query.Row // by origin, deduplicated
	states []query.AggState
}

// Simulation is a runnable sensor network executing one scheme.
type Simulation struct {
	cfg    Config
	policy node.Policy

	engine *sim.Engine
	topo   *topology.Topology
	source field.Source
	medium *radio.Medium
	coll   *metrics.Collector
	opt    *core.Optimizer // nil unless the scheme uses tier 1
	nodes  []*node.Node

	installed map[query.ID]*installedQuery
	buffers   map[bufKey]*epochBuffer
	// identity maps user queries when tier 1 is off.
	users map[query.ID]query.Query

	results  *Results
	spans    *telemetry.SpanLog
	nextID   query.ID
	failures int
}

// New builds a simulation. Queries are admitted with Post/PostAt and the
// virtual clock advanced with Run.
func New(cfg Config) (*Simulation, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("network: Topo is required")
	}
	if cfg.Scheme == 0 {
		return nil, fmt.Errorf("network: Scheme is required")
	}
	engine := sim.NewEngine()
	rng := sim.NewRand(cfg.Seed)
	source := cfg.Source
	if source == nil {
		source = field.New(cfg.Topo, field.Config{Seed: cfg.Seed})
	}
	coll := metrics.NewCollector(cfg.Topo.Size())
	medium := radio.New(engine, cfg.Topo, coll, rng.Fork(1), cfg.Radio)
	medium.SetTracer(cfg.Trace)

	policy := cfg.Scheme.Policy()
	if cfg.PolicyOverride != nil {
		policy = *cfg.PolicyOverride
	}

	maint := cfg.MaintenanceInterval
	if maint == 0 {
		maint = DefaultMaintenanceInterval
	}
	if maint < 0 {
		maint = 0
	}

	s := &Simulation{
		cfg:       cfg,
		policy:    policy,
		engine:    engine,
		topo:      cfg.Topo,
		source:    source,
		medium:    medium,
		coll:      coll,
		installed: make(map[query.ID]*installedQuery),
		buffers:   make(map[bufKey]*epochBuffer),
		users:     make(map[query.ID]query.Query),
		results:   newResults(!cfg.DiscardResults),
		spans:     telemetry.NewSpanLog(),
		nextID:    1,
	}
	if cfg.Scheme.UsesBaseStationOpt() {
		model, err := cost.NewModel(cfg.Topo.LevelSizes(), cost.Config{})
		if err != nil {
			return nil, err
		}
		s.opt = core.NewOptimizer(model, core.Options{Alpha: cfg.Alpha})
	}

	s.nodes = make([]*node.Node, 0, cfg.Topo.Size()-1)
	for i := 1; i < cfg.Topo.Size(); i++ {
		s.nodes = append(s.nodes, node.New(node.Config{
			ID:                  topology.NodeID(i),
			Topo:                cfg.Topo,
			Engine:              engine,
			Medium:              medium,
			Source:              source,
			Policy:              policy,
			MaintenanceInterval: maint,
			Rand:                rng.Fork(int64(100 + i)),
			Metrics:             coll,
			Trace:               cfg.Trace,
		}))
	}
	medium.SetHandler(topology.BaseStation, s.onReceive)
	s.startFailures(cfg.Failures, rng.Fork(7))
	return s, nil
}

// Engine exposes the virtual clock (examples and tests).
func (s *Simulation) Engine() *sim.Engine { return s.engine }

// Topology returns the deployment the simulation runs on.
func (s *Simulation) Topology() *topology.Topology { return s.topo }

// Metrics returns the radio accounting collector.
func (s *Simulation) Metrics() *metrics.Collector { return s.coll }

// Results returns the delivered user results.
func (s *Simulation) Results() *Results { return s.results }

// Optimizer returns the tier-1 optimizer, or nil for schemes without it.
func (s *Simulation) Optimizer() *core.Optimizer { return s.opt }

// Spans returns the per-query lifecycle span log (admit → rewrite →
// install flood → first result). The log is internally locked, so it may
// be snapshotted from any goroutine while the simulation runs.
func (s *Simulation) Spans() *telemetry.SpanLog { return s.spans }

// Node returns the runtime of sensor node id (tests).
func (s *Simulation) Node(id topology.NodeID) *node.Node {
	if id <= 0 || int(id) > len(s.nodes) {
		return nil
	}
	return s.nodes[id-1]
}

// Run advances the simulation by d of virtual time.
func (s *Simulation) Run(d time.Duration) {
	s.engine.Run(s.engine.Now() + sim.Time(d))
}

// AvgTransmissionTime returns the paper's metric over the elapsed virtual
// time, as a fraction in [0, 1].
func (s *Simulation) AvgTransmissionTime() float64 {
	return s.coll.AvgTransmissionTime(time.Duration(s.engine.Now()))
}

// NextID allocates a fresh user query ID.
func (s *Simulation) NextID() query.ID {
	id := s.nextID
	s.nextID++
	return id
}

// Post admits a user query at the current virtual time. If q.ID is zero a
// fresh ID is assigned; the (possibly assigned) ID is returned.
func (s *Simulation) Post(q query.Query) (query.ID, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if q.ID == 0 {
		q.ID = s.NextID()
	} else if q.ID >= s.nextID {
		s.nextID = q.ID + 1
	}
	if err := s.admit(q); err != nil {
		return 0, err
	}
	s.cfg.Trace.Emitf(s.engine.Now(), trace.KindAdmit, topology.BaseStation, "q%d %s", q.ID, q)
	// TinyDB LIFETIME clause: the query terminates itself. Manual
	// cancellation may race ahead; the auto-cancel then finds the query
	// gone and does nothing.
	if q.Lifetime > 0 {
		qid := q.ID
		s.engine.After(q.Lifetime, func() {
			_ = s.Cancel(qid)
		})
	}
	return q.ID, nil
}

// PostBatch admits several user queries as one operation. Under a tier-1
// scheme the optimizer computes the net change, so synthetic queries that
// the batch itself supersedes are never flooded; without tier 1 it is
// equivalent to posting each query in turn. Returns the assigned IDs.
func (s *Simulation) PostBatch(qs []query.Query) ([]query.ID, error) {
	prepared := make([]query.Query, 0, len(qs))
	ids := make([]query.ID, 0, len(qs))
	seen := make(map[query.ID]bool, len(qs))
	for _, q := range qs {
		q = q.Normalize()
		if err := q.Validate(); err != nil {
			return nil, err
		}
		if q.ID == 0 {
			q.ID = s.NextID()
		} else if q.ID >= s.nextID {
			s.nextID = q.ID + 1
		}
		if seen[q.ID] {
			return nil, fmt.Errorf("network: duplicate query ID %d in batch", q.ID)
		}
		seen[q.ID] = true
		prepared = append(prepared, q)
		ids = append(ids, q.ID)
	}
	if s.opt != nil {
		// Check the error before flooding: a failed batch must not leave
		// partial injections in the network.
		ch, err := s.opt.InsertBatch(prepared)
		if err != nil {
			return nil, err
		}
		s.markAdmitted(ch, ids...)
		s.apply(ch)
	} else {
		for _, q := range prepared {
			if _, dup := s.users[q.ID]; dup {
				return nil, fmt.Errorf("network: duplicate query ID %d", q.ID)
			}
			s.users[q.ID] = q
			ch := core.Change{Inject: []query.Query{q}}
			s.markAdmitted(ch, q.ID)
			s.apply(ch)
		}
	}
	for _, q := range prepared {
		s.cfg.Trace.Emitf(s.engine.Now(), trace.KindAdmit, topology.BaseStation, "q%d %s", q.ID, q)
		if q.Lifetime > 0 {
			qid := q.ID
			s.engine.After(q.Lifetime, func() { _ = s.Cancel(qid) })
		}
	}
	return ids, nil
}

// PostAt schedules a user query admission at virtual time t (tests and
// workload replay). The query must carry an explicit ID.
func (s *Simulation) PostAt(t time.Duration, q query.Query) {
	s.engine.Schedule(sim.Time(t), func() {
		if _, err := s.Post(q); err != nil {
			panic(fmt.Sprintf("network: PostAt(%v, %v): %v", t, q, err))
		}
	})
}

// Cancel terminates a user query at the current virtual time. The trace
// event is emitted only after successful termination, so cancelling an
// unknown or already-expired ID (e.g. a manual cancel racing a LIFETIME
// auto-cancel) does not pollute the log.
func (s *Simulation) Cancel(qid query.ID) error {
	if s.opt != nil {
		ch, err := s.opt.Terminate(qid)
		if err != nil {
			return err
		}
		s.apply(ch)
		s.spans.Cancel(int(qid))
		s.cfg.Trace.Emitf(s.engine.Now(), trace.KindCancel, topology.BaseStation, "q%d", qid)
		return nil
	}
	if _, ok := s.users[qid]; !ok {
		return fmt.Errorf("network: unknown query %d", qid)
	}
	delete(s.users, qid)
	s.apply(core.Change{Abort: []query.ID{qid}})
	s.spans.Cancel(int(qid))
	s.cfg.Trace.Emitf(s.engine.Now(), trace.KindCancel, topology.BaseStation, "q%d", qid)
	return nil
}

// CancelAt schedules a cancellation.
func (s *Simulation) CancelAt(t time.Duration, qid query.ID) {
	s.engine.Schedule(sim.Time(t), func() {
		if err := s.Cancel(qid); err != nil {
			panic(fmt.Sprintf("network: CancelAt(%v, %d): %v", t, qid, err))
		}
	})
}

// admit routes a validated user query through tier 1 (when enabled) and
// floods the resulting network changes. The query's lifecycle span opens
// here: admission time, rewrite injection count, and — when the change
// set floods anything — the install flood mark.
func (s *Simulation) admit(q query.Query) error {
	if s.opt != nil {
		ch, err := s.opt.Insert(q)
		if err != nil {
			return err
		}
		s.markAdmitted(ch, q.ID)
		s.apply(ch)
		return nil
	}
	if _, dup := s.users[q.ID]; dup {
		return fmt.Errorf("network: duplicate query ID %d", q.ID)
	}
	s.users[q.ID] = q
	ch := core.Change{Inject: []query.Query{q}}
	s.markAdmitted(ch, q.ID)
	s.apply(ch)
	return nil
}

// markAdmitted opens lifecycle spans for the given user queries: the
// tier-1 rewrite produced ch, injecting len(ch.Inject) synthetic queries.
// An admission with zero injections was fully covered by already-running
// shared queries and needs no install flood.
func (s *Simulation) markAdmitted(ch core.Change, ids ...query.ID) {
	now := time.Duration(s.engine.Now())
	for _, id := range ids {
		s.spans.Admit(int(id), now, len(ch.Inject))
		if len(ch.Inject) > 0 {
			s.spans.Flood(int(id), now)
		}
	}
}

// apply floods the aborts and injections of a tier-1 change set.
func (s *Simulation) apply(ch core.Change) {
	for _, qid := range ch.Abort {
		s.floodAbort(qid)
	}
	for _, q := range ch.Inject {
		s.floodQuery(q)
	}
}

// startTime picks the first epoch of a query: aligned schemes snap to the
// next multiple of the reporting period after a propagation guard (§3.2.1 —
// "the epoch start time ... is set to be divisible by the epoch duration";
// windowed queries align to their slide schedule so the base station's
// collection windows coincide with the nodes' reports); the baseline keeps
// TinyDB's injection-derived phase.
func (s *Simulation) startTime(q query.Query) sim.Time {
	now := s.engine.Now()
	if s.policy.AlignedEpochs {
		period := sim.Time(q.ReportEvery())
		guard := now + sim.Time(node.StartGuard)
		k := guard / period
		if guard%period != 0 {
			k++
		}
		if k == 0 {
			k = 1
		}
		return k * period
	}
	return now + sim.Time(q.Epoch)
}

// floodQuery injects a network query: the base station broadcasts the
// propagation message (each node rebroadcasts once — see node.onQuery) and
// starts collecting its results.
func (s *Simulation) floodQuery(q query.Query) {
	start := s.startTime(q)
	inst := &installedQuery{q: q, start: start}
	s.installed[q.ID] = inst
	s.medium.Send(&radio.Message{
		Kind:  radio.KindQuery,
		Src:   topology.BaseStation,
		Bytes: queryBytes(q),
		Payload: &node.QueryMsg{
			Q:     q,
			Start: start,
		},
	})
	s.scheduleFlush(inst, start)
}

func (s *Simulation) floodAbort(qid query.ID) {
	inst, ok := s.installed[qid]
	if !ok {
		return
	}
	delete(s.installed, qid)
	if inst.flush.Pending() {
		inst.flush.Cancel()
	}
	for k := range s.buffers {
		if k.qid == qid {
			delete(s.buffers, k)
		}
	}
	s.medium.Send(&radio.Message{
		Kind:    radio.KindAbort,
		Src:     topology.BaseStation,
		Bytes:   abortBytes(),
		Payload: &node.AbortMsg{QID: qid},
	})
}

// flushDelay is how long after an epoch fires the base station closes its
// collection window: every level's slot plus queueing slack.
func (s *Simulation) flushDelay() sim.Time {
	return sim.Time(time.Duration(s.topo.MaxDepth()+1)*node.SlotTime + 500*time.Millisecond)
}

func (s *Simulation) scheduleFlush(inst *installedQuery, epochT sim.Time) {
	inst.flush = s.engine.Schedule(epochT+s.flushDelay(), func() {
		s.flush(inst, epochT)
		// Delivering results can terminate the query from inside the flush
		// (a result hook cancelling the last subscriber's query); only a
		// still-installed query gets its next collection window.
		if s.installed[inst.q.ID] == inst {
			s.scheduleFlush(inst, epochT+sim.Time(inst.q.ReportEvery()))
		}
	})
}

// onReceive is the base station's radio handler: addressed result messages
// land in per-(query, epoch) buffers until their flush.
func (s *Simulation) onReceive(d radio.Delivery) {
	if !d.Addressed {
		return
	}
	msg, ok := d.Msg.Payload.(*node.ResultMsg)
	if !ok {
		return
	}
	s.coll.AddLatency(time.Duration(s.engine.Now() - msg.EpochT))
	for _, qid := range msg.QueriesFor(topology.BaseStation) {
		if _, live := s.installed[qid]; !live {
			continue
		}
		key := bufKey{qid: qid, epochT: msg.EpochT}
		buf, ok := s.buffers[key]
		if !ok {
			buf = &epochBuffer{rows: make(map[topology.NodeID]query.Row)}
			s.buffers[key] = buf
		}
		if msg.IsAggregation() {
			for _, qs := range msg.States {
				if qs.QID == qid {
					buf.states = mergeStates(buf.states, qs.State)
				}
			}
		} else if msg.Row != nil {
			buf.rows[msg.Origin] = query.Row{Node: msg.Origin, Time: msg.EpochT, Values: msg.Row}
		}
	}
}

// flush closes one epoch's collection window and delivers user results,
// through the tier-1 mapper when the scheme rewrites queries and as-is
// otherwise.
func (s *Simulation) flush(inst *installedQuery, epochT sim.Time) {
	s.cfg.Trace.Emitf(s.engine.Now(), trace.KindFlush, topology.BaseStation, "q%d epoch=%v", inst.q.ID, epochT)
	key := bufKey{qid: inst.q.ID, epochT: epochT}
	buf := s.buffers[key]
	delete(s.buffers, key)

	var rows []query.Row
	var states []query.AggState
	if buf != nil {
		rows = make([]query.Row, 0, len(buf.rows))
		for _, r := range buf.rows {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
		states = buf.states
	}

	if s.opt != nil {
		// §3.1.2 statistics maintenance: returned readings refine the
		// optimizer's per-attribute histograms, so future selectivity
		// estimates track the live data distribution.
		for _, r := range rows {
			for a, v := range r.Values {
				s.opt.Model().Observe(a, v)
			}
		}
		if inst.q.IsAggregation() {
			for _, ua := range s.opt.MapAggregation(inst.q.ID, epochT, states) {
				s.results.addAgg(ua)
				if len(ua.Results) > 0 {
					s.spans.FirstResult(int(ua.QueryID), time.Duration(s.engine.Now()))
				}
			}
			return
		}
		acq, agg := s.opt.MapAcquisition(inst.q.ID, epochT, rows)
		for _, ur := range acq {
			s.results.addRows(ur)
			if len(ur.Rows) > 0 {
				s.spans.FirstResult(int(ur.QueryID), time.Duration(s.engine.Now()))
			}
		}
		for _, ua := range agg {
			s.results.addAgg(ua)
			if len(ua.Results) > 0 {
				s.spans.FirstResult(int(ua.QueryID), time.Duration(s.engine.Now()))
			}
		}
		return
	}

	// Identity mapping: the network query is the user query.
	uq, live := s.users[inst.q.ID]
	if !live {
		return
	}
	if uq.IsAggregation() {
		res := core.AggregateStates(uq, epochT, states)
		s.results.addAgg(core.UserAgg{QueryID: uq.ID, Time: epochT, Results: res})
		if len(res) > 0 {
			s.spans.FirstResult(int(uq.ID), time.Duration(s.engine.Now()))
		}
		return
	}
	s.results.addRows(core.UserRows{QueryID: uq.ID, Time: epochT, Rows: rows})
	if len(rows) > 0 {
		s.spans.FirstResult(int(uq.ID), time.Duration(s.engine.Now()))
	}
}

func mergeStates(states []query.AggState, st query.AggState) []query.AggState {
	for i := range states {
		if states[i].Agg == st.Agg && states[i].Group == st.Group {
			states[i].Merge(st)
			return states
		}
	}
	return append(states, st)
}

func queryBytes(q query.Query) int {
	return cost.HeaderBytes + 6 + cost.BytesPerAttr*len(q.Attrs) +
		cost.BytesPerAgg*len(q.Aggs) + 5*len(q.Preds)
}

func abortBytes() int { return cost.HeaderBytes + 2 }
