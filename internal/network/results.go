package network

import (
	"repro/internal/core"
	"repro/internal/query"
)

// Results collects the user-visible result streams of a simulation. Hooks
// fire on every delivery; retention can be disabled for long metric-only
// runs.
type Results struct {
	keep bool
	rows map[query.ID][]core.UserRows
	aggs map[query.ID][]core.UserAgg

	// Delivery totals, maintained even when retention is disabled — the
	// time-series sampler reads them on long metric-only runs.
	rowEpochs int
	aggEpochs int
	totalRows int

	// OnRows and OnAggs, when set, observe every delivery.
	OnRows func(core.UserRows)
	OnAggs func(core.UserAgg)
}

func newResults(keep bool) *Results {
	return &Results{
		keep: keep,
		rows: make(map[query.ID][]core.UserRows),
		aggs: make(map[query.ID][]core.UserAgg),
	}
}

func (r *Results) addRows(ur core.UserRows) {
	r.rowEpochs++
	r.totalRows += len(ur.Rows)
	if r.OnRows != nil {
		r.OnRows(ur)
	}
	if r.keep {
		r.rows[ur.QueryID] = append(r.rows[ur.QueryID], ur)
	}
}

func (r *Results) addAgg(ua core.UserAgg) {
	r.aggEpochs++
	if r.OnAggs != nil {
		r.OnAggs(ua)
	}
	if r.keep {
		r.aggs[ua.QueryID] = append(r.aggs[ua.QueryID], ua)
	}
}

// Totals returns the cumulative delivery counts — acquisition epochs,
// aggregation epochs and individual acquisition rows — independent of
// whether retention is enabled.
func (r *Results) Totals() (rowEpochs, aggEpochs, rows int) {
	return r.rowEpochs, r.aggEpochs, r.totalRows
}

// RowsFor returns the acquisition epochs delivered for one user query, in
// delivery order.
func (r *Results) RowsFor(qid query.ID) []core.UserRows { return r.rows[qid] }

// AggsFor returns the aggregation epochs delivered for one user query, in
// delivery order.
func (r *Results) AggsFor(qid query.ID) []core.UserAgg { return r.aggs[qid] }

// RowEpochs returns how many acquisition epochs were delivered for a query.
func (r *Results) RowEpochs(qid query.ID) int { return len(r.rows[qid]) }

// AggEpochs returns how many aggregation epochs were delivered for a query.
func (r *Results) AggEpochs(qid query.ID) int { return len(r.aggs[qid]) }
