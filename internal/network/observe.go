package network

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/topology"
)

// DefaultSampleInterval is the time-series sampling period when none is
// given: one snapshot per maintenance beacon period.
const DefaultSampleInterval = 30 * time.Second

// Manifest returns the run's identifying metadata (scheme, seed, topology,
// tool version) with its config hash filled in. Callers may set the
// workload/duration fields and re-hash before exporting.
func (s *Simulation) Manifest() obs.Manifest {
	m := obs.NewManifest("")
	m.Scheme = s.cfg.Scheme.String()
	m.Seed = s.cfg.Seed
	m.Nodes = s.topo.Size()
	m.Topology = fmt.Sprintf("%d nodes, depth %d, range %.0fft",
		s.topo.Size(), s.topo.MaxDepth(), s.topo.RadioRange())
	m.Alpha = s.cfg.Alpha
	if s.opt != nil && m.Alpha == 0 {
		m.Alpha = core.DefaultAlpha
	}
	return m.Hashed()
}

// StartSeries attaches a time-series sampler to the simulation: the
// discrete-event engine snapshots the run's radio, optimizer, engine and
// delivery state every `every` of virtual time (DefaultSampleInterval when
// zero or negative), starting with an initial sample at the current instant.
// Call before Run; the returned series fills as virtual time advances.
func (s *Simulation) StartSeries(every time.Duration) *obs.Series {
	if every <= 0 {
		every = DefaultSampleInterval
	}
	ser := obs.NewSeries(every)
	ser.Append(s.sample())
	var tick func()
	tick = func() {
		ser.Append(s.sample())
		s.engine.After(every, tick)
	}
	s.engine.After(every, tick)
	return ser
}

// sample snapshots the whole simulation at the current virtual instant.
func (s *Simulation) sample() obs.Sample {
	n := s.topo.Size()
	smp := obs.Sample{
		AtMS:             time.Duration(s.engine.Now()).Milliseconds(),
		Messages:         s.coll.Messages(),
		Retransmissions:  s.coll.Retransmissions(),
		Dropped:          s.coll.Dropped(),
		Bytes:            s.coll.Bytes(),
		Clipped:          s.coll.Clipped(),
		InstalledQueries: len(s.installed),
		QueueDepth:       s.engine.Len(),
		EventsFired:      s.engine.Fired(),
	}
	smp.NodeTxMS = make([]float64, n)
	smp.NodeRxMS = make([]float64, n)
	for id := 0; id < n; id++ {
		tx := float64(s.coll.TxTime(topology.NodeID(id))) / float64(time.Millisecond)
		rx := float64(s.coll.RxTime(topology.NodeID(id))) / float64(time.Millisecond)
		smp.NodeTxMS[id] = tx
		smp.NodeRxMS[id] = rx
		smp.TxTotalMS += tx
		smp.RxTotalMS += rx
		if tx > smp.TxMaxMS {
			smp.TxMaxMS = tx
		}
	}
	if s.opt != nil {
		smp.UserQueries = s.opt.UserCount()
		smp.SyntheticQueries = s.opt.SyntheticCount()
	} else {
		smp.UserQueries = len(s.users)
	}
	rowEpochs, aggEpochs, rows := s.results.Totals()
	smp.RowEpochs = rowEpochs
	smp.AggEpochs = aggEpochs
	smp.RowsDelivered = rows
	smp.Completeness = 1
	if sensors := n - 1; rowEpochs > 0 && sensors > 0 {
		smp.Completeness = float64(rows) / float64(rowEpochs*sensors)
	}
	return smp
}
