// Package network assembles the full simulated sensor network: topology,
// physical field, radio medium, sensor-node runtimes and the base station —
// and executes query workloads under one of the paper's four schemes
// (baseline, base-station optimization only, in-network optimization only,
// and the full TTMQO).
package network

import (
	"fmt"

	"repro/internal/node"
)

// Scheme selects which optimization tiers run (the four bars of Figure 3).
type Scheme uint8

const (
	// Baseline is unmodified TinyDB: every user query is injected as-is and
	// runs independently — per-query epochs and messages on the fixed
	// routing tree (§4.1's comparison strategy).
	Baseline Scheme = iota + 1
	// BSOnly applies only the tier-1 base-station rewriting; the rewritten
	// synthetic queries execute with TinyDB's in-network behaviour.
	BSOnly
	// InNetworkOnly injects user queries unrewritten but runs the tier-2
	// in-network optimizations (aligned epochs, query-aware DAG routing,
	// shared messages, sleep).
	InNetworkOnly
	// TTMQO is the full two-tier scheme.
	TTMQO
)

// String names the scheme as the figures label it.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case BSOnly:
		return "base-station"
	case InNetworkOnly:
		return "in-network"
	case TTMQO:
		return "ttmqo"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// ParseScheme converts a scheme name (as printed by String) back to a value.
func ParseScheme(s string) (Scheme, error) {
	for _, sc := range []Scheme{Baseline, BSOnly, InNetworkOnly, TTMQO} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("network: unknown scheme %q", s)
}

// AllSchemes lists the four schemes in figure order.
func AllSchemes() []Scheme {
	return []Scheme{Baseline, BSOnly, InNetworkOnly, TTMQO}
}

// UsesBaseStationOpt reports whether the scheme rewrites queries at the base
// station (tier 1).
func (s Scheme) UsesBaseStationOpt() bool { return s == BSOnly || s == TTMQO }

// Policy returns the tier-2 node policy of the scheme. BSOnly aligns epochs
// — the rewriting's epoch-GCD semantics require nested epochs — but takes
// none of the in-network sharing optimizations, so its radio behaviour is
// TinyDB executing the synthetic queries.
func (s Scheme) Policy() node.Policy {
	switch s {
	case BSOnly:
		return node.Policy{AlignedEpochs: true, SRT: true}
	case InNetworkOnly, TTMQO:
		return node.InNetwork()
	default:
		return node.Baseline()
	}
}
