package network

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/node"
	"repro/internal/query"
	"repro/internal/topology"
	"repro/internal/trace"
)

func grid4(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// newSim builds a simulation with collisions and maintenance disabled so
// message counts are exact.
func newSim(t *testing.T, topo *topology.Topology, scheme Scheme, seed int64) *Simulation {
	t.Helper()
	s, err := New(Config{
		Topo:                topo,
		Scheme:              scheme,
		Seed:                seed,
		MaintenanceInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Scheme: Baseline}); err == nil {
		t.Fatal("missing topology must error")
	}
	if _, err := New(Config{Topo: grid4(t)}); err == nil {
		t.Fatal("missing scheme must error")
	}
}

func TestSchemeParseRoundTrip(t *testing.T) {
	for _, sc := range AllSchemes() {
		got, err := ParseScheme(sc.String())
		if err != nil || got != sc {
			t.Fatalf("round trip %v failed: %v %v", sc, got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestFloodInstallsEverywhere(t *testing.T) {
	s := newSim(t, grid4(t), Baseline, 1)
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Second)
	for i := 1; i < s.topo.Size(); i++ {
		got := s.Node(topology.NodeID(i)).Queries()
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("node %d queries = %v", i, got)
		}
	}
	// Flood cost: base station + one rebroadcast per node.
	if got := s.Metrics().MessagesOf("query"); got != s.topo.Size() {
		t.Fatalf("query messages = %d, want %d", got, s.topo.Size())
	}
}

func TestAbortUninstallsEverywhere(t *testing.T) {
	s := newSim(t, grid4(t), Baseline, 1)
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Second)
	if err := s.Cancel(1); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().MessagesOf("result")
	s.Run(20 * time.Second)
	for i := 1; i < s.topo.Size(); i++ {
		if got := s.Node(topology.NodeID(i)).Queries(); len(got) != 0 {
			t.Fatalf("node %d still has queries %v", i, got)
		}
	}
	if after := s.Metrics().MessagesOf("result"); after != before {
		t.Fatalf("result traffic after abort: %d -> %d", before, after)
	}
	if err := s.Cancel(1); err == nil {
		t.Fatal("double cancel must error")
	}
}

func TestBaselineAcquisitionEndToEnd(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, Baseline, 2)
	q := query.MustParse("SELECT nodeid, light EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)

	epochs := s.Results().RowsFor(1)
	if len(epochs) < 5 {
		t.Fatalf("delivered %d epochs, want >= 5", len(epochs))
	}
	// Every epoch must carry one row per sensor node (no predicate).
	for _, ep := range epochs {
		if len(ep.Rows) != topo.Size()-1 {
			t.Fatalf("epoch %v: %d rows, want %d", ep.Time, len(ep.Rows), topo.Size()-1)
		}
		for _, r := range ep.Rows {
			if r.Values[field.AttrNodeID] != float64(r.Node) {
				t.Fatalf("row node mismatch: %v", r)
			}
		}
	}
	// Epoch timestamps: first at exactly one epoch after injection (t=0).
	if epochs[0].Time != 4096*time.Millisecond {
		t.Fatalf("first epoch at %v, want 4096ms", epochs[0].Time)
	}
}

func TestBaselineAggregationMatchesField(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, Baseline, 3)
	q := query.MustParse("SELECT MAX(light), MIN(light) EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)

	epochs := s.Results().AggsFor(1)
	if len(epochs) < 5 {
		t.Fatalf("delivered %d epochs", len(epochs))
	}
	for _, ep := range epochs {
		// Recompute ground truth from the field at the epoch time.
		truthMax, truthMin := math.Inf(-1), math.Inf(1)
		for i := 1; i < topo.Size(); i++ {
			v := s.source.Reading(topology.NodeID(i), field.AttrLight, ep.Time)
			truthMax = math.Max(truthMax, v)
			truthMin = math.Min(truthMin, v)
		}
		for _, r := range ep.Results {
			if r.Empty {
				t.Fatalf("empty aggregate at %v", ep.Time)
			}
			switch r.Agg.Op {
			case query.Max:
				if r.Value != truthMax {
					t.Fatalf("MAX at %v = %f, want %f", ep.Time, r.Value, truthMax)
				}
			case query.Min:
				if r.Value != truthMin {
					t.Fatalf("MIN at %v = %f, want %f", ep.Time, r.Value, truthMin)
				}
			}
		}
	}
}

func TestPredicateFiltersRows(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, Baseline, 4)
	// nodeid <= 5: exactly nodes 1..5 qualify.
	q := query.MustParse("SELECT nodeid WHERE nodeid >= 1 AND nodeid <= 5 EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	for _, ep := range s.Results().RowsFor(1) {
		if len(ep.Rows) != 5 {
			t.Fatalf("epoch %v: %d rows, want 5", ep.Time, len(ep.Rows))
		}
		for _, r := range ep.Rows {
			if r.Node < 1 || r.Node > 5 {
				t.Fatalf("unexpected node %d", r.Node)
			}
		}
	}
}

// The central correctness property (DESIGN.md invariant 5): with aligned
// arrivals and no collisions, every scheme delivers semantically identical
// user results.
func TestSchemeEquivalence(t *testing.T) {
	topo := grid4(t)
	queries := []string{
		"SELECT nodeid, light WHERE light >= 100 AND light <= 800 EPOCH DURATION 4096",
		"SELECT light WHERE light >= 200 AND light <= 600 EPOCH DURATION 8192",
		"SELECT MAX(light) WHERE light >= 100 AND light <= 800 EPOCH DURATION 8192",
		"SELECT MAX(temp), MIN(temp) WHERE temp >= 10 AND temp <= 90 EPOCH DURATION 4096",
		"SELECT AVG(light) WHERE light >= 100 AND light <= 800 GROUP BY nodeid BUCKET 4 EPOCH DURATION 8192",
		"SELECT WINAVG(temp, 4) WHERE temp >= 10 AND temp <= 90 EPOCH DURATION 8192",
	}
	const seed = 7
	const runFor = 60 * time.Second

	type resKey struct {
		qid query.ID
		t   time.Duration
	}
	run := func(scheme Scheme) (map[resKey][]query.Row, map[resKey][]query.AggResult) {
		s := newSim(t, topo, scheme, seed)
		for i, qs := range queries {
			q := query.MustParse(qs)
			q.ID = query.ID(i + 1)
			s.PostAt(0, q)
		}
		s.Run(runFor)
		rows := make(map[resKey][]query.Row)
		aggs := make(map[resKey][]query.AggResult)
		for i := range queries {
			qid := query.ID(i + 1)
			for _, ep := range s.Results().RowsFor(qid) {
				rows[resKey{qid, time.Duration(ep.Time)}] = ep.Rows
			}
			for _, ep := range s.Results().AggsFor(qid) {
				aggs[resKey{qid, time.Duration(ep.Time)}] = ep.Results
			}
		}
		return rows, aggs
	}

	baseRows, baseAggs := run(Baseline)
	if len(baseRows) == 0 || len(baseAggs) == 0 {
		t.Fatal("baseline produced no results")
	}
	for _, scheme := range []Scheme{BSOnly, InNetworkOnly, TTMQO} {
		rows, aggs := run(scheme)
		if len(rows) != len(baseRows) {
			t.Fatalf("%v: %d row epochs vs baseline %d", scheme, len(rows), len(baseRows))
		}
		for k, want := range baseRows {
			got, ok := rows[k]
			if !ok {
				t.Fatalf("%v: missing row epoch %+v", scheme, k)
			}
			if len(got) != len(want) {
				t.Fatalf("%v %+v: %d rows vs baseline %d", scheme, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Node != want[i].Node {
					t.Fatalf("%v %+v row %d: node %d vs %d", scheme, k, i, got[i].Node, want[i].Node)
				}
				for a, v := range want[i].Values {
					if gv, ok := got[i].Values[a]; !ok || math.Abs(gv-v) > 1e-9 {
						t.Fatalf("%v %+v row %d attr %v: %f vs %f", scheme, k, i, a, gv, v)
					}
				}
			}
		}
		if len(aggs) != len(baseAggs) {
			t.Fatalf("%v: %d agg epochs vs baseline %d", scheme, len(aggs), len(baseAggs))
		}
		for k, want := range baseAggs {
			got, ok := aggs[k]
			if !ok || len(got) != len(want) {
				t.Fatalf("%v: agg epoch %+v mismatch", scheme, k)
			}
			for i := range want {
				if got[i].Agg != want[i].Agg || got[i].Empty != want[i].Empty || got[i].Group != want[i].Group {
					t.Fatalf("%v %+v agg %d: %+v vs %+v", scheme, k, i, got[i], want[i])
				}
				if !want[i].Empty && math.Abs(got[i].Value-want[i].Value) > 1e-9 {
					t.Fatalf("%v %+v agg %d: %f vs %f", scheme, k, i, got[i].Value, want[i].Value)
				}
			}
		}
	}
}

// Two identical acquisition queries: TTMQO must spend far fewer result
// messages than the baseline (the headline savings).
func TestSharingReducesMessages(t *testing.T) {
	topo := grid4(t)
	post := func(s *Simulation) {
		for i := 1; i <= 4; i++ {
			q := query.MustParse("SELECT nodeid, light EPOCH DURATION 4096")
			q.ID = query.ID(i)
			s.PostAt(0, q)
		}
	}
	base := newSim(t, topo, Baseline, 5)
	post(base)
	base.Run(60 * time.Second)

	opt := newSim(t, topo, TTMQO, 5)
	post(opt)
	opt.Run(60 * time.Second)

	bm := base.Metrics().MessagesOf("result")
	om := opt.Metrics().MessagesOf("result")
	if om >= bm/3 {
		t.Fatalf("TTMQO result messages = %d, baseline = %d; expected ~4x sharing", om, bm)
	}
	if opt.Optimizer().SyntheticCount() != 1 {
		t.Fatalf("4 identical queries should collapse to 1 synthetic, got %d", opt.Optimizer().SyntheticCount())
	}
	if base.AvgTransmissionTime() <= opt.AvgTransmissionTime() {
		t.Fatal("TTMQO must reduce average transmission time")
	}
}

func TestSleepMode(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, InNetworkOnly, 6)
	// A predicate nobody satisfies: light is in [0,1000], so every node
	// idles and (with the DAG policy) should eventually sleep.
	q := query.MustParse("SELECT light WHERE light >= 2000 EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	asleep := 0
	for i := 1; i < topo.Size(); i++ {
		if s.Node(topology.NodeID(i)).Asleep() {
			asleep++
		}
	}
	if asleep != topo.Size()-1 {
		t.Fatalf("asleep = %d, want all %d sensor nodes", asleep, topo.Size()-1)
	}
	if got := s.Metrics().MessagesOf("result"); got != 0 {
		t.Fatalf("result messages = %d, want 0", got)
	}
}

func TestDeterminism(t *testing.T) {
	topo := grid4(t)
	run := func() (int, float64) {
		s, err := New(Config{Topo: topo, Scheme: TTMQO, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			q := query.MustParse("SELECT light WHERE light >= 100 EPOCH DURATION 4096")
			q.ID = query.ID(i)
			s.PostAt(time.Duration(i)*time.Second, q)
		}
		s.Run(60 * time.Second)
		return s.Metrics().Messages(), s.AvgTransmissionTime()
	}
	m1, a1 := run()
	m2, a2 := run()
	if m1 != m2 || a1 != a2 {
		t.Fatalf("same seed diverged: (%d,%g) vs (%d,%g)", m1, a1, m2, a2)
	}
}

func TestMaintenanceBeacons(t *testing.T) {
	topo := grid4(t)
	s, err := New(Config{Topo: topo, Scheme: Baseline, Seed: 1,
		MaintenanceInterval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60 * time.Second)
	if got := s.Metrics().MessagesOf("beacon"); got == 0 {
		t.Fatal("expected maintenance beacons")
	}
}

func TestPostAssignsIDs(t *testing.T) {
	s := newSim(t, grid4(t), Baseline, 1)
	id1, err := s.Post(query.MustParse("SELECT light EPOCH DURATION 4096"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Post(query.MustParse("SELECT temp EPOCH DURATION 4096"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("bad IDs: %d, %d", id1, id2)
	}
	// Duplicate explicit ID rejected.
	q := query.MustParse("SELECT light")
	q.ID = id1
	if _, err := s.Post(q); err == nil {
		t.Fatal("duplicate ID must error")
	}
}

func TestAvgTransmissionTimeNonzero(t *testing.T) {
	s := newSim(t, grid4(t), Baseline, 1)
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * time.Second)
	att := s.AvgTransmissionTime()
	if att <= 0 || att >= 1 {
		t.Fatalf("avg transmission time = %f", att)
	}
}

// §3.1.2 statistics: results flowing back through the base station refine
// the cost model's selectivity estimates toward the live distribution.
func TestAdaptiveStatistics(t *testing.T) {
	topo := grid4(t)
	s := newSim(t, topo, TTMQO, 8)
	q := query.MustParse("SELECT light, temp EPOCH DURATION 2048")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	model := s.Optimizer().Model()
	pred := []query.Predicate{{Attr: field.AttrLight, Min: 0, Max: 100}}
	before := model.Selectivity(pred)
	s.Run(2 * time.Minute)
	after := model.Selectivity(pred)
	// Ground truth: the fraction of sensors actually reading light ≤ 100.
	matching := 0
	for i := 1; i < topo.Size(); i++ {
		if v := s.source.Reading(topology.NodeID(i), field.AttrLight, s.engine.Now()); v <= 100 {
			matching++
		}
	}
	truth := float64(matching) / float64(topo.Size()-1)
	if before == after {
		t.Fatal("histograms did not move")
	}
	if math.Abs(after-truth) >= math.Abs(before-truth) {
		t.Fatalf("estimate should approach truth: before=%.3f after=%.3f truth=%.3f",
			before, after, truth)
	}
}

// TinyDB's LIFETIME clause: the query terminates itself after its lifetime.
func TestQueryLifetimeAutoTerminates(t *testing.T) {
	s := newSim(t, grid4(t), TTMQO, 9)
	q := query.MustParse("SELECT light EPOCH DURATION 4096 LIFETIME 30s")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(20 * time.Second)
	if s.Optimizer().UserCount() != 1 {
		t.Fatal("query should still be live")
	}
	s.Run(60 * time.Second)
	if s.Optimizer().UserCount() != 0 {
		t.Fatal("query should have auto-terminated")
	}
	count := s.Metrics().MessagesOf("result")
	s.Run(60 * time.Second)
	if got := s.Metrics().MessagesOf("result"); got != count {
		t.Fatalf("traffic continued after lifetime: %d -> %d", count, got)
	}
	// A manual cancel racing the auto-cancel must not panic the engine.
	q2 := query.MustParse("SELECT temp EPOCH DURATION 4096 LIFETIME 30s")
	q2.ID = 2
	if _, err := s.Post(q2); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Second)
	if err := s.Cancel(2); err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Minute)
}

// GROUP BY end to end: per-bucket aggregates match ground truth recomputed
// from the field, in both the baseline and the optimized scheme.
func TestGroupByEndToEnd(t *testing.T) {
	topo := grid4(t)
	for _, scheme := range []Scheme{Baseline, TTMQO} {
		s := newSim(t, topo, scheme, 11)
		q := query.MustParse("SELECT MAX(light), COUNT(light) GROUP BY nodeid BUCKET 4 EPOCH DURATION 4096")
		q.ID = 1
		if _, err := s.Post(q); err != nil {
			t.Fatal(err)
		}
		s.Run(30 * time.Second)
		epochs := s.Results().AggsFor(1)
		if len(epochs) < 5 {
			t.Fatalf("%v: %d epochs", scheme, len(epochs))
		}
		for _, ep := range epochs {
			// Ground truth per bucket of 4 node IDs.
			truthMax := map[int64]float64{}
			truthCnt := map[int64]int{}
			for i := 1; i < topo.Size(); i++ {
				g := int64(i / 4)
				v := s.source.Reading(topology.NodeID(i), field.AttrLight, ep.Time)
				if cur, ok := truthMax[g]; !ok || v > cur {
					truthMax[g] = v
				}
				truthCnt[g]++
			}
			gotMax := map[int64]float64{}
			gotCnt := map[int64]float64{}
			for _, r := range ep.Results {
				if r.Empty {
					t.Fatalf("%v: empty grouped result %+v", scheme, r)
				}
				switch r.Agg.Op {
				case query.Max:
					gotMax[r.Group] = r.Value
				case query.Count:
					gotCnt[r.Group] = r.Value
				}
			}
			if len(gotMax) != len(truthMax) {
				t.Fatalf("%v: %d groups, want %d", scheme, len(gotMax), len(truthMax))
			}
			for g, want := range truthMax {
				if gotMax[g] != want {
					t.Fatalf("%v: MAX group %d = %f, want %f", scheme, g, gotMax[g], want)
				}
				if int(gotCnt[g]) != truthCnt[g] {
					t.Fatalf("%v: COUNT group %d = %f, want %d", scheme, g, gotCnt[g], truthCnt[g])
				}
			}
		}
	}
}

// Two grouped aggregations with identical predicates and group spec merge
// at the base station.
func TestGroupByTier1Merge(t *testing.T) {
	s := newSim(t, grid4(t), TTMQO, 12)
	q1 := query.MustParse("SELECT MAX(light) WHERE temp > 10 GROUP BY nodeid BUCKET 4 EPOCH DURATION 4096")
	q1.ID = 1
	q2 := query.MustParse("SELECT MIN(light) WHERE temp > 10 GROUP BY nodeid BUCKET 4 EPOCH DURATION 8192")
	q2.ID = 2
	if _, err := s.Post(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Post(q2); err != nil {
		t.Fatal(err)
	}
	if s.Optimizer().SyntheticCount() != 1 {
		t.Fatalf("synthetic count = %d, want 1", s.Optimizer().SyntheticCount())
	}
	s.Run(30 * time.Second)
	if s.Results().AggEpochs(1) == 0 || s.Results().AggEpochs(2) == 0 {
		t.Fatal("both grouped queries must receive results")
	}
}

// The trace facility records the full run: admissions, installs, firings,
// transmissions and flushes.
func TestTraceRecordsRun(t *testing.T) {
	topo := grid4(t)
	buf := &trace.Buffer{}
	s, err := New(Config{
		Topo:                topo,
		Scheme:              TTMQO,
		Seed:                13,
		MaintenanceInterval: -1,
		Trace:               buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	if _, err := s.Post(q); err != nil {
		t.Fatal(err)
	}
	s.Run(15 * time.Second)
	if err := s.Cancel(1); err != nil {
		t.Fatal(err)
	}
	s.Run(5 * time.Second)

	counts := buf.CountByKind()
	for _, k := range []trace.Kind{trace.KindAdmit, trace.KindCancel, trace.KindInstall,
		trace.KindAbort, trace.KindFire, trace.KindTx, trace.KindFlush} {
		if counts[k] == 0 {
			t.Errorf("no %s events recorded: %v", k, counts)
		}
	}
	// Installs: one per sensor node.
	if counts[trace.KindInstall] != topo.Size()-1 {
		t.Errorf("install events = %d, want %d", counts[trace.KindInstall], topo.Size()-1)
	}
}

// Property sweep: EVERY tier-2 policy combination preserves user-visible
// results — optimizations may only remove radio work, never change answers.
func TestPolicyCombinationsPreserveResults(t *testing.T) {
	topo := grid4(t)
	queries := []string{
		"SELECT nodeid, light WHERE light >= 100 AND light <= 800 EPOCH DURATION 4096",
		"SELECT MAX(temp) WHERE temp >= 10 AND temp <= 90 EPOCH DURATION 8192",
	}
	run := func(p node.Policy) map[string]int {
		s, err := New(Config{
			Topo:                topo,
			Scheme:              InNetworkOnly,
			Seed:                20,
			MaintenanceInterval: -1,
			PolicyOverride:      &p,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, qs := range queries {
			q := query.MustParse(qs)
			q.ID = query.ID(i + 1)
			s.PostAt(0, q)
		}
		s.Run(40 * time.Second)
		// Fingerprint the delivered results.
		fp := map[string]int{}
		for i := range queries {
			qid := query.ID(i + 1)
			for _, ep := range s.Results().RowsFor(qid) {
				for _, r := range ep.Rows {
					fp[fmt.Sprintf("q%d@%v:n%d:%.6f", qid, ep.Time, r.Node, r.Values[field.AttrLight])]++
				}
			}
			for _, ep := range s.Results().AggsFor(qid) {
				for _, res := range ep.Results {
					fp[fmt.Sprintf("q%d@%v:%s=%.6f/%v", qid, ep.Time, res.Agg, res.Value, res.Empty)]++
				}
			}
		}
		return fp
	}

	// Reference: all mechanisms on (timestamps align with every other
	// aligned combination; AlignedEpochs stays fixed across the sweep so
	// phases match).
	ref := run(node.Policy{AlignedEpochs: true, QueryAwareDAG: true,
		SharedMessages: true, Multicast: true, Sleep: true, SRT: true})
	if len(ref) == 0 {
		t.Fatal("reference produced no results")
	}
	for mask := 0; mask < 32; mask++ {
		p := node.Policy{
			AlignedEpochs:  true,
			QueryAwareDAG:  mask&1 != 0,
			SharedMessages: mask&2 != 0,
			Multicast:      mask&4 != 0,
			Sleep:          mask&8 != 0,
			SRT:            mask&16 != 0,
		}
		got := run(p)
		if len(got) != len(ref) {
			t.Fatalf("policy %+v: %d result entries vs reference %d", p, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("policy %+v: result mismatch at %s", p, k)
			}
		}
	}
}

// A recorded trace replayed through the full stack produces exactly the
// same results as the live source it was recorded from (at the sampled
// granularity).
func TestTraceSourceReplayMatchesLive(t *testing.T) {
	topo := grid4(t)
	live := field.New(topo, field.Config{Seed: 23})
	trace := field.Record(live, topo, field.AllAttrs(), 2048*time.Millisecond, 2*time.Minute)

	run := func(src field.Source) []core.UserRows {
		s, err := New(Config{
			Topo: topo, Scheme: TTMQO, Seed: 23, Source: src,
			MaintenanceInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := query.MustParse("SELECT nodeid, light WHERE light >= 100 EPOCH DURATION 4096")
		q.ID = 1
		s.PostAt(0, q)
		s.Run(90 * time.Second)
		return s.Results().RowsFor(1)
	}
	a := run(live)
	b := run(trace)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("epochs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time || len(a[i].Rows) != len(b[i].Rows) {
			t.Fatalf("epoch %d differs", i)
		}
		for j := range a[i].Rows {
			if a[i].Rows[j].Values[field.AttrLight] != b[i].Rows[j].Values[field.AttrLight] {
				t.Fatalf("row value differs at epoch %d row %d", i, j)
			}
		}
	}
}

func TestPostBatchFloodsOnce(t *testing.T) {
	topo := grid4(t)
	qs := func() []query.Query {
		var out []query.Query
		for _, s := range []string{
			"SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192",
			"SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192",
			"SELECT light WHERE 120 < light AND light < 480 EPOCH DURATION 8192",
		} {
			out = append(out, query.MustParse(s))
		}
		return out
	}

	seq := newSim(t, topo, TTMQO, 24)
	for _, q := range qs() {
		if _, err := seq.Post(q); err != nil {
			t.Fatal(err)
		}
	}
	seq.Run(2 * time.Second)

	bat := newSim(t, topo, TTMQO, 24)
	ids, err := bat.PostBatch(qs())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	bat.Run(2 * time.Second)

	seqControl := seq.Metrics().MessagesOf("query") + seq.Metrics().MessagesOf("abort")
	batControl := bat.Metrics().MessagesOf("query") + bat.Metrics().MessagesOf("abort")
	if batControl >= seqControl {
		t.Fatalf("batch control traffic %d should be below sequential %d", batControl, seqControl)
	}
	// Exactly one flood for the single merged synthetic query.
	if got := bat.Metrics().MessagesOf("query"); got != topo.Size() {
		t.Fatalf("batch query messages = %d, want one flood (%d)", got, topo.Size())
	}
	// Results still flow to all three.
	bat.Run(30 * time.Second)
	for _, id := range ids {
		if bat.Results().RowEpochs(id) == 0 {
			t.Fatalf("query %d got no results", id)
		}
	}
}

// The whole stack runs on irregular (non-grid) deployments too, and the
// scheme ordering survives.
func TestIrregularDeployment(t *testing.T) {
	topo, err := topology.NewRandom(25, 130, 50, 31)
	if err != nil {
		t.Fatal(err)
	}
	tx := map[Scheme]float64{}
	for _, scheme := range []Scheme{Baseline, TTMQO} {
		s, err := New(Config{Topo: topo, Scheme: scheme, Seed: 31, DiscardResults: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workloadA() {
			s.PostAt(0, w)
		}
		s.Run(3 * time.Minute)
		tx[scheme] = s.AvgTransmissionTime()
	}
	if tx[TTMQO] >= 0.5*tx[Baseline] {
		t.Fatalf("TTMQO on irregular topology: %.5f vs baseline %.5f", tx[TTMQO], tx[Baseline])
	}
}

func workloadA() []query.Query {
	var out []query.Query
	for i, s := range []string{
		"SELECT light WHERE light >= 100 AND light <= 600 EPOCH DURATION 4096",
		"SELECT light WHERE light >= 150 AND light <= 650 EPOCH DURATION 8192",
		"SELECT light, temp WHERE light >= 100 AND light <= 700 EPOCH DURATION 4096",
		"SELECT light WHERE light >= 120 AND light <= 640 EPOCH DURATION 8192",
	} {
		q := query.MustParse(s)
		q.ID = query.ID(i + 1)
		out = append(out, q)
	}
	return out
}
