package network

import (
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// FailureConfig injects node failures: each sensor node alternates between
// up and down states with exponentially distributed durations. The base
// station never fails. This exercises the paper's stated future work
// ("node failures and unreliable wireless transmissions"); the runtime's
// failover — death suspicion, reroutes, beacon anti-entropy — bounds the
// damage, and the experiments/reliability harness quantifies the remaining
// result loss.
type FailureConfig struct {
	// MTBF is the mean up-time between failures; zero disables failures.
	MTBF time.Duration
	// MTTR is the mean down-time per failure (default 30 s).
	MTTR time.Duration
}

// startFailures arms the per-node up/down processes.
func (s *Simulation) startFailures(cfg FailureConfig, rng *sim.Rand) {
	if cfg.MTBF <= 0 {
		return
	}
	if cfg.MTTR <= 0 {
		cfg.MTTR = 30 * time.Second
	}
	for i := 1; i < s.topo.Size(); i++ {
		id := topology.NodeID(i)
		r := rng.Fork(int64(i))
		s.scheduleFailure(id, cfg, r)
	}
}

func (s *Simulation) scheduleFailure(id topology.NodeID, cfg FailureConfig, rng *sim.Rand) {
	up := time.Duration(rng.ExpFloat64() * float64(cfg.MTBF))
	s.engine.After(up, func() {
		s.Node(id).SetDown(true)
		s.failures++
		down := time.Duration(rng.ExpFloat64() * float64(cfg.MTTR))
		s.engine.After(down, func() {
			s.Node(id).SetDown(false)
			s.scheduleFailure(id, cfg, rng)
		})
	})
}

// Failures returns how many node failures have occurred so far.
func (s *Simulation) Failures() int { return s.failures }

// FailNode manually fails a node (tests and chaos scenarios); ReviveNode
// brings it back. Both are idempotent: failing an already-down node neither
// re-fails it nor inflates the failure counter, and reviving an up node is
// a no-op, so composed fault schedules (e.g. a region cut overlapping MTBF
// churn) count each outage once.
func (s *Simulation) FailNode(id topology.NodeID) {
	if n := s.Node(id); n != nil && !n.Down() {
		n.SetDown(true)
		s.failures++
	}
}

// ReviveNode revives a manually failed node. Reviving an up node is a no-op.
func (s *Simulation) ReviveNode(id topology.NodeID) {
	if n := s.Node(id); n != nil && n.Down() {
		n.SetDown(false)
	}
}

// FailRegion cuts the whole routing subtree rooted at id off the network —
// a topology partition: every sensor in root's subtree interval goes down
// at once. It returns the affected node IDs. HealRegion reverses the cut.
func (s *Simulation) FailRegion(root topology.NodeID) []topology.NodeID {
	return s.eachInRegion(root, s.FailNode)
}

// HealRegion revives every node in the subtree rooted at root.
func (s *Simulation) HealRegion(root topology.NodeID) []topology.NodeID {
	return s.eachInRegion(root, s.ReviveNode)
}

func (s *Simulation) eachInRegion(root topology.NodeID, f func(topology.NodeID)) []topology.NodeID {
	if s.Node(root) == nil {
		return nil
	}
	lo, hi := s.topo.SubtreeInterval(root)
	ids := make([]topology.NodeID, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		f(id)
		ids = append(ids, id)
	}
	return ids
}

// SetLossRate overrides the radio medium's per-transmission loss
// probability at runtime — the burst-loss hook chaos scenarios use to model
// interference bursts. Call only from an engine callback or before Run.
func (s *Simulation) SetLossRate(r float64) { s.medium.SetLossRate(r) }

// LossRate returns the radio medium's current loss probability.
func (s *Simulation) LossRate() float64 { return s.medium.LossRate() }
