package network

import (
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// FailureConfig injects node failures: each sensor node alternates between
// up and down states with exponentially distributed durations. The base
// station never fails. This exercises the paper's stated future work
// ("node failures and unreliable wireless transmissions"); the runtime's
// failover — death suspicion, reroutes, beacon anti-entropy — bounds the
// damage, and the experiments/reliability harness quantifies the remaining
// result loss.
type FailureConfig struct {
	// MTBF is the mean up-time between failures; zero disables failures.
	MTBF time.Duration
	// MTTR is the mean down-time per failure (default 30 s).
	MTTR time.Duration
}

// startFailures arms the per-node up/down processes.
func (s *Simulation) startFailures(cfg FailureConfig, rng *sim.Rand) {
	if cfg.MTBF <= 0 {
		return
	}
	if cfg.MTTR <= 0 {
		cfg.MTTR = 30 * time.Second
	}
	for i := 1; i < s.topo.Size(); i++ {
		id := topology.NodeID(i)
		r := rng.Fork(int64(i))
		s.scheduleFailure(id, cfg, r)
	}
}

func (s *Simulation) scheduleFailure(id topology.NodeID, cfg FailureConfig, rng *sim.Rand) {
	up := time.Duration(rng.ExpFloat64() * float64(cfg.MTBF))
	s.engine.After(up, func() {
		s.Node(id).SetDown(true)
		s.failures++
		down := time.Duration(rng.ExpFloat64() * float64(cfg.MTTR))
		s.engine.After(down, func() {
			s.Node(id).SetDown(false)
			s.scheduleFailure(id, cfg, rng)
		})
	})
}

// Failures returns how many node failures have occurred so far.
func (s *Simulation) Failures() int { return s.failures }

// FailNode manually fails a node (tests); ReviveNode brings it back.
func (s *Simulation) FailNode(id topology.NodeID) {
	if n := s.Node(id); n != nil {
		n.SetDown(true)
		s.failures++
	}
}

// ReviveNode revives a manually failed node.
func (s *Simulation) ReviveNode(id topology.NodeID) {
	if n := s.Node(id); n != nil {
		n.SetDown(false)
	}
}
