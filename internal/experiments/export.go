package experiments

import (
	"io"
	"time"

	"repro/internal/obs"
)

// SweepManifest builds the manifest attached to an exported sweep: study
// name, base seed, per-run duration and runs-per-point, hashed. It carries
// no wall-clock state, so exports are byte-identical across parallelism
// settings and repeated runs.
func SweepManifest(study string, seed int64, dur time.Duration, runs int) obs.Manifest {
	m := obs.NewManifest(study)
	m.Seed = seed
	m.DurationMS = dur.Milliseconds()
	m.Runs = runs
	return m.Hashed()
}

// WriteSweepJSON exports one or more studies' result rows under a manifest.
func WriteSweepJSON(w io.Writer, m obs.Manifest, studies ...obs.Study) error {
	return obs.WriteJSON(w, obs.Export{Manifest: m, Studies: studies})
}

// Export bundles every study of the report into the JSON envelope. Timings
// and Elapsed are deliberately excluded: they are wall-clock measurements,
// and exported results must be identical at any parallelism setting.
func (r *Report) Export() obs.Export {
	m := SweepManifest("all", r.Config.Seed, r.Config.Duration, r.Config.Runs)
	return obs.Export{Manifest: m, Studies: []obs.Study{
		{Name: "figure 2", Rows: r.Fig2},
		{Name: "figure 3", Rows: r.Fig3},
		{Name: "figure 4a", Rows: r.Fig4A},
		{Name: "figure 4b", Rows: r.Fig4B},
		{Name: "figure 4c", Rows: r.Fig4C},
		{Name: "figure 5", Rows: r.Fig5},
		{Name: "ablation", Rows: r.Ablation},
		{Name: "reliability", Rows: r.Reliability},
		{Name: "chaos", Rows: r.Chaos},
		{Name: "lifetime", Rows: r.Lifetime},
		{Name: "scaling", Rows: r.Scaling},
	}}
}

// WriteJSON exports the report (manifest + all study rows) to w.
func (r *Report) WriteJSON(w io.Writer) error {
	return obs.WriteJSON(w, r.Export())
}
