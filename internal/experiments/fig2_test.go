package experiments

import "testing"

// TestFigure2Example checks the §3.2.2 worked example end to end: exact
// message and node counts for both modes and both query types.
func TestFigure2Example(t *testing.T) {
	rows, err := RunFigure2Example()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AcqMessages != r.WantAcqMessages {
			t.Errorf("%s: acquisition messages = %d, want %d", r.Mode, r.AcqMessages, r.WantAcqMessages)
		}
		if r.AcqNodes != r.WantAcqNodes {
			t.Errorf("%s: involved nodes = %d, want %d", r.Mode, r.AcqNodes, r.WantAcqNodes)
		}
		if r.AggMessages != r.WantAggMessages {
			t.Errorf("%s: aggregation messages = %d, want %d", r.Mode, r.AggMessages, r.WantAggMessages)
		}
	}
}
