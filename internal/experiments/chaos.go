package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chaos"
	"repro/internal/runner"
)

// ChaosConfig parametrizes the chaos study: the full serving stack —
// simulation, gateway with WAL crash recovery, reconnecting subscriber
// sessions — is driven through a set of scripted fault scenarios and the
// user-visible damage is measured: result completeness against the
// deterministic field's ground truth, duplicate deliveries, sequence gaps,
// and every invariant violation the harness detected. Expected shape:
// churn, bursts and partitions cost completeness but never correctness
// (no duplicates, no gaps), and gateway crashes cost nothing at all —
// recovery replays the WAL and the resume rings redeliver what the crash
// stranded in flight.
type ChaosConfig struct {
	Seed int64
	// Side of the grid (chaos.DefaultSide if zero).
	Side int
	// Clients is the number of subscriber sessions per scenario
	// (chaos.DefaultClients if zero).
	Clients int
	// Scenarios lists the runs: builtin names (chaos.BuiltinNames) or whole
	// scenario files read into text form. Default: every builtin.
	Scenarios []string
	// WALDir holds the per-scenario WAL files (a private temp directory,
	// removed afterwards, if empty).
	WALDir string
	// Parallelism caps the worker pool running independent scenarios (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

// ChaosRow is one scenario's outcome.
type ChaosRow struct {
	Scenario string `json:"scenario"`
	// FaultEvents is the number of scheduled fault steps; Crashes the
	// gateway crash/recover cycles among them.
	FaultEvents int `json:"fault_events"`
	Crashes     int `json:"crashes"`
	// Reconnects counts client re-attachments, Resumes the streams they
	// picked back up.
	Reconnects int64 `json:"reconnects"`
	Resumes    int64 `json:"resumes"`
	// Updates is the fresh client-side deliveries; Completeness is
	// delivered rows over the deterministic field's ground truth.
	Updates      int64   `json:"updates"`
	Completeness float64 `json:"completeness"`
	// Duplicates and Gaps are the exactly-once violations (both should be
	// zero everywhere; gaps may be bounded by the scenario).
	Duplicates int64 `json:"duplicates"`
	Gaps       int64 `json:"gaps"`
	// Violations lists every invariant breach the harness detected.
	Violations []string `json:"violations,omitempty"`
}

// RunChaos sweeps the fault scenarios. Each scenario is an independent
// cell with its own WAL file, so the sweep parallelizes like every other
// study — and, like them, produces byte-identical rows at any parallelism.
func RunChaos(cfg ChaosConfig) ([]ChaosRow, error) {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = chaos.BuiltinNames()
	}
	dir := cfg.WALDir
	if dir == "" {
		d, err := os.MkdirTemp("", "ttmqo-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	type cell struct {
		i   int
		ref string
	}
	cells := make([]cell, len(cfg.Scenarios))
	for i, ref := range cfg.Scenarios {
		cells[i] = cell{i: i, ref: ref}
	}
	return sweep(cfg.Parallelism, cfg.Timing, cells, func(c cell) (ChaosRow, error) {
		sc, err := chaos.Load(c.ref)
		if err != nil {
			return ChaosRow{}, err
		}
		rep, err := chaos.RunScenario(chaos.RunConfig{
			Scenario: sc,
			Seed:     cfg.Seed,
			Side:     cfg.Side,
			Clients:  cfg.Clients,
			WALPath:  filepath.Join(dir, fmt.Sprintf("cell-%02d.wal", c.i)),
		})
		if err != nil {
			return ChaosRow{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		return ChaosRow{
			Scenario:     rep.Scenario,
			FaultEvents:  rep.FaultEvents,
			Crashes:      rep.Crashes,
			Reconnects:   rep.Reconnects,
			Resumes:      rep.Stats.Resumes,
			Updates:      rep.Updates,
			Completeness: rep.Completeness,
			Duplicates:   rep.Duplicates,
			Gaps:         rep.Gaps,
			Violations:   rep.Violations,
		}, nil
	})
}

// ChaosString renders the study as a text table.
func ChaosString(rows []ChaosRow) string {
	out := fmt.Sprintf("%-11s %7s %8s %10s %14s %4s %5s %s\n",
		"scenario", "faults", "crashes", "reconnects", "completeness", "dup", "gaps", "violations")
	for _, r := range rows {
		v := "none"
		if len(r.Violations) > 0 {
			v = strings.Join(r.Violations, "; ")
		}
		out += fmt.Sprintf("%-11s %7d %8d %10d %13.1f%% %4d %5d %s\n",
			r.Scenario, r.FaultEvents, r.Crashes, r.Reconnects, r.Completeness*100, r.Duplicates, r.Gaps, v)
	}
	return out
}
