package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fig5Config parametrizes the Figure 5 study: transmission-time savings of
// TTMQO over the baseline as a function of predicate selectivity, for
// different aggregation/acquisition mixes.
type Fig5Config struct {
	Seed int64
	// Side of the deployment grid (default 4 — the paper's 16-node setup
	// with 8 concurrent queries).
	Side int
	// Duration of each run (default 10 minutes).
	Duration time.Duration
	// Selectivities swept (default 0.2 … 1.0 step 0.2).
	Selectivities []float64
	// AggFractions lists the mixes (default 0, 0.5, 1 — the paper's
	// "100% acquisition", "50/50" and "100% aggregation" series).
	AggFractions []float64
	// Runs averages each point over this many seeds (default 3).
	Runs int
	// Parallelism caps the worker pool running independent cells (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *Fig5Config) setDefaults() {
	if c.Side == 0 {
		c.Side = 4
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if len(c.Selectivities) == 0 {
		c.Selectivities = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.AggFractions == nil {
		c.AggFractions = []float64{0, 0.5, 1}
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
}

// Fig5Row is one point of a Figure 5 series.
type Fig5Row struct {
	AggFraction float64
	Selectivity float64
	// BaselineTxPct and TTMQOTxPct are average transmission times (%).
	BaselineTxPct float64
	TTMQOTxPct    float64
	// SavingsPct is the figure's y axis; SavingsStd is its sample standard
	// deviation across seeds.
	SavingsPct float64
	SavingsStd float64
}

// RunFigure5 sweeps predicate selectivity for three query mixes with 8
// concurrent queries (§4.3). Expected shape: savings grow with selectivity
// for every mix; 100 % acquisition with a shared epoch duration reaches
// ≈ 7/8 at selectivity 1 (and can exceed it — fewer messages mean fewer
// collision-induced retransmissions); the 100 % aggregation series is low
// until it jumps sharply at selectivity 1, where the predicates become
// identical and tier 1 can suddenly merge the aggregation queries.
func RunFigure5(cfg Fig5Config) ([]Fig5Row, error) {
	cfg.setDefaults()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	type point struct {
		frac, sel float64
	}
	var points []point
	for _, frac := range cfg.AggFractions {
		for _, sel := range cfg.Selectivities {
			points = append(points, point{frac, sel})
		}
	}
	// Each (mix, selectivity, seed) cell is an independent pair of
	// simulations; the flattened grid runs across CPUs and the per-point
	// averages are folded afterwards in fixed seed order, so the rows are
	// identical at any parallelism.
	type cell struct {
		pt  int
		run int
	}
	var cells []cell
	for p := range points {
		for r := 0; r < cfg.Runs; r++ {
			cells = append(cells, cell{p, r})
		}
	}
	type pair struct{ b, o float64 }
	pairs, err := sweep(cfg.Parallelism, cfg.Timing, cells, func(c cell) (pair, error) {
		pt := points[c.pt]
		seed := cfg.Seed + int64(c.run)*104729
		ws := workload.Selectivity(workload.SelectivityConfig{
			Seed:        seed,
			AggFraction: pt.frac,
			Selectivity: pt.sel,
			Nodes:       topo.Size(),
			// All series share one epoch duration: the paper's 7/8
			// bound for the acquisition series presumes it, and the
			// sharp aggregation jump at selectivity 1 requires the
			// tier-1 merge not to oversample at a shorter GCD.
			SameEpoch: true,
		})
		b, err := runFig5Once(topo, network.Baseline, seed, ws, cfg.Duration)
		if err != nil {
			return pair{}, err
		}
		o, err := runFig5Once(topo, network.TTMQO, seed, ws, cfg.Duration)
		if err != nil {
			return pair{}, err
		}
		return pair{b, o}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, 0, len(points))
	for p, pt := range points {
		var base, opt, save stats.Series
		for r := 0; r < cfg.Runs; r++ {
			pr := pairs[p*cfg.Runs+r]
			base.Add(pr.b)
			opt.Add(pr.o)
			save.Add(metrics.Savings(pr.b, pr.o) * 100)
		}
		rows = append(rows, Fig5Row{
			AggFraction:   pt.frac,
			Selectivity:   pt.sel,
			BaselineTxPct: base.Mean() * 100,
			TTMQOTxPct:    opt.Mean() * 100,
			SavingsPct:    save.Mean(),
			SavingsStd:    save.Stddev(),
		})
	}
	return rows, nil
}

func runFig5Once(topo *topology.Topology, scheme network.Scheme, seed int64,
	ws []workload.TimedQuery, d time.Duration) (float64, error) {
	s, err := network.New(network.Config{
		Topo:           topo,
		Scheme:         scheme,
		Seed:           seed,
		Radio:          radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
		DiscardResults: true,
	})
	if err != nil {
		return 0, err
	}
	for _, w := range ws {
		s.PostAt(w.Arrive, w.Query)
	}
	s.Run(d)
	return s.AvgTransmissionTime(), nil
}

// Fig5String renders rows as a text table.
func Fig5String(rows []Fig5Row) string {
	out := fmt.Sprintf("%8s %12s %13s %10s %9s\n",
		"aggFrac", "selectivity", "baseline(%)", "ttmqo(%)", "save(%)")
	for _, r := range rows {
		out += fmt.Sprintf("%8.2f %12.2f %13.4f %10.4f %9.1f\n",
			r.AggFraction, r.Selectivity, r.BaselineTxPct, r.TTMQOTxPct, r.SavingsPct)
	}
	return out
}
