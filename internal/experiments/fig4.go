package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/query"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fig4Config parametrizes the §4.3 adaptive-workload studies. They replay
// the workload's arrival/termination timeline against the tier-1 optimizer
// and the cost model alone — exactly the quantities Figure 4 reports
// (benefit ratio, synthetic query count), no packet simulation needed.
type Fig4Config struct {
	Seed int64
	// NumQueries per run (paper: 500).
	NumQueries int
	// Side of the deployment grid used for the cost model (default 4).
	Side int
	// Concurrencies lists the average concurrent query counts of the sweep
	// (default 8..48 step 8 — the paper's x axis).
	Concurrencies []int
	// Alphas lists the α values of the sweep (default 0.0..1.0 step 0.2).
	Alphas []float64
	// Runs averages each point over this many workload seeds (default 3).
	Runs int
	// Parallelism caps the worker pool running independent replays (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *Fig4Config) setDefaults() {
	if c.NumQueries == 0 {
		c.NumQueries = 500
	}
	if c.Side == 0 {
		c.Side = 4
	}
	if len(c.Concurrencies) == 0 {
		c.Concurrencies = []int{8, 16, 24, 32, 40, 48}
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{0.0001, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
}

// Fig4Point is one point of a Figure 4 series.
type Fig4Point struct {
	Concurrency int
	Alpha       float64
	// BenefitRatio is Σbenefit / Σcost over the run (Figure 4(a)/(b)),
	// net of re-injection flooding overhead; BenefitStd is its sample
	// standard deviation across workload seeds.
	BenefitRatio float64
	BenefitStd   float64
	// AvgSynthetic is the time-averaged number of running synthetic
	// queries (Figure 4(c)).
	AvgSynthetic float64
	// AvgConcurrent is the measured time-averaged number of live user
	// queries (sanity check on the x axis).
	AvgConcurrent float64
	// Reinjections counts synthetic queries (re)injected into the network
	// after the initial insert of each user query.
	Reinjections int
}

// timeline replays a workload through the optimizer, integrating user cost,
// synthetic cost and synthetic count over virtual time and charging each
// injected/aborted synthetic query a network-wide flooding cost.
func timeline(ws []workload.TimedQuery, side int, alpha float64) (Fig4Point, error) {
	topo, err := topology.PaperGrid(side)
	if err != nil {
		return Fig4Point{}, err
	}
	model, err := cost.NewModel(topo.LevelSizes(), cost.Config{})
	if err != nil {
		return Fig4Point{}, err
	}
	opt := core.NewOptimizer(model, core.Options{Alpha: alpha})

	type event struct {
		at     time.Duration
		arrive bool
		q      query.Query
	}
	events := make([]event, 0, 2*len(ws))
	var end time.Duration
	for _, w := range ws {
		events = append(events, event{at: w.Arrive, arrive: true, q: w.Query})
		dep := w.Depart
		if dep == 0 {
			continue
		}
		events = append(events, event{at: dep, q: w.Query})
		if dep > end {
			end = dep
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	// floodCost charges one network-wide propagation/abortion flood: every
	// node transmits once (§3.1.4 calls these "costly operations").
	floodCost := func(q query.Query) float64 {
		perMsg := cost.DefaultCstart.Seconds() +
			cost.DefaultCtrans.Seconds()*float64(cost.MsgLen(q)+9)
		return float64(topo.Size()) * perMsg
	}

	var (
		userInt, synInt, synCntInt, userCntInt float64 // time integrals
		overhead                               float64
		reinjections                           int
		last                                   time.Duration
	)
	for _, ev := range events {
		dt := (ev.at - last).Seconds()
		if dt > 0 {
			userInt += opt.TotalUserCost() * dt
			synInt += opt.TotalSyntheticCost() * dt
			synCntInt += float64(opt.SyntheticCount()) * dt
			userCntInt += float64(opt.UserCount()) * dt
			last = ev.at
		}
		var ch core.Change
		var err error
		if ev.arrive {
			ch, err = opt.Insert(ev.q)
		} else {
			ch, err = opt.Terminate(ev.q.ID)
		}
		if err != nil {
			return Fig4Point{}, err
		}
		for _, q := range ch.Inject {
			overhead += floodCost(q)
		}
		for range ch.Abort {
			overhead += floodCost(query.Query{})
		}
		if !ev.arrive {
			reinjections += len(ch.Inject)
		}
	}

	span := end.Seconds()
	if span <= 0 {
		return Fig4Point{}, fmt.Errorf("experiments: empty workload span")
	}
	ratio := 0.0
	if userInt > 0 {
		ratio = (userInt - synInt - overhead) / userInt
	}
	return Fig4Point{
		Alpha:         alpha,
		BenefitRatio:  ratio,
		AvgSynthetic:  synCntInt / span,
		AvgConcurrent: userCntInt / span,
		Reinjections:  reinjections,
	}, nil
}

// pointSpec is one (concurrency, α) point of a Figure 4 sweep.
type pointSpec struct {
	concurrency int
	alpha       float64
}

// runPoints replays every (point, seed) cell across the worker pool —
// each replay is an independent optimizer world — and folds the per-point
// averages afterwards in fixed seed order, so the output is identical at
// any parallelism.
func runPoints(cfg Fig4Config, specs []pointSpec) ([]Fig4Point, error) {
	type cell struct {
		spec int
		run  int
	}
	var cells []cell
	for s := range specs {
		for r := 0; r < cfg.Runs; r++ {
			cells = append(cells, cell{s, r})
		}
	}
	raw, err := sweep(cfg.Parallelism, cfg.Timing, cells, func(c cell) (Fig4Point, error) {
		ws := workload.Random(workload.RandomConfig{
			Seed:              cfg.Seed + int64(c.run)*7919,
			NumQueries:        cfg.NumQueries,
			TargetConcurrency: specs[c.spec].concurrency,
		})
		return timeline(ws, cfg.Side, specs[c.spec].alpha)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig4Point, 0, len(specs))
	for s, spec := range specs {
		var benefit, syn, conc stats.Series
		reinj := 0
		for r := 0; r < cfg.Runs; r++ {
			p := raw[s*cfg.Runs+r]
			benefit.Add(p.BenefitRatio)
			syn.Add(p.AvgSynthetic)
			conc.Add(p.AvgConcurrent)
			reinj += p.Reinjections
		}
		out = append(out, Fig4Point{
			Concurrency:   spec.concurrency,
			Alpha:         spec.alpha,
			BenefitRatio:  benefit.Mean(),
			BenefitStd:    benefit.Stddev(),
			AvgSynthetic:  syn.Mean(),
			AvgConcurrent: conc.Mean(),
			Reinjections:  reinj / cfg.Runs,
		})
	}
	return out, nil
}

// RunFigure4A sweeps the number of concurrent queries at α = 0.6
// (Figure 4(a): benefit ratio rising from ≈32 % at 8 queries to ≈82 % at
// 48).
func RunFigure4A(cfg Fig4Config) ([]Fig4Point, error) {
	cfg.setDefaults()
	specs := make([]pointSpec, 0, len(cfg.Concurrencies))
	for _, c := range cfg.Concurrencies {
		specs = append(specs, pointSpec{c, core.DefaultAlpha})
	}
	return runPoints(cfg, specs)
}

// RunFigure4B sweeps α at 8 concurrent queries (Figure 4(b): an interior
// maximum near α = 0.6 — too small forces rewrites that lose the old
// synthetic query's benefit, too large keeps fetching data nobody wants).
func RunFigure4B(cfg Fig4Config) ([]Fig4Point, error) {
	cfg.setDefaults()
	specs := make([]pointSpec, 0, len(cfg.Alphas))
	for _, a := range cfg.Alphas {
		specs = append(specs, pointSpec{8, a})
	}
	return runPoints(cfg, specs)
}

// RunFigure4C sweeps concurrency for α ∈ {0.2, 0.6, 1.0} and reports the
// average number of synthetic queries (Figure 4(c): fewer than 4 even at 48
// concurrent queries, decreasing slightly as α grows).
func RunFigure4C(cfg Fig4Config) ([]Fig4Point, error) {
	cfg.setDefaults()
	var specs []pointSpec
	for _, a := range []float64{0.2, 0.6, 1.0} {
		for _, c := range cfg.Concurrencies {
			specs = append(specs, pointSpec{c, a})
		}
	}
	return runPoints(cfg, specs)
}

// Fig4String renders Figure 4 points as a text table.
func Fig4String(points []Fig4Point) string {
	out := fmt.Sprintf("%11s %6s %12s %9s %10s %8s\n",
		"concurrency", "alpha", "benefit(%)", "avgSyn", "avgConc", "reinject")
	for _, p := range points {
		out += fmt.Sprintf("%11d %6.2f %12.1f %9.2f %10.1f %8d\n",
			p.Concurrency, p.Alpha, p.BenefitRatio*100, p.AvgSynthetic, p.AvgConcurrent, p.Reinjections)
	}
	return out
}
