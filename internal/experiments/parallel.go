package experiments

import "repro/internal/runner"

// sweep fans the cells of one study out across the runner's worker pool and
// reassembles the rows in input order, so a parallel sweep is byte-identical
// to a serial one. parallelism <= 0 uses one worker per CPU; tm, when
// non-nil, receives the sweep's per-cell wall-clock timing.
func sweep[C, R any](parallelism int, tm *runner.Timing, cells []C, fn func(C) (R, error)) ([]R, error) {
	return runner.MapTimed(parallelism, len(cells), tm, func(i int) (R, error) {
		return fn(cells[i])
	})
}
