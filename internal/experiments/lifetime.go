package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
)

// LifetimeConfig parametrizes the network-lifetime study: the classic WSN
// metric (time until the busiest node's battery dies) under each scheme.
// The paper argues its savings "can save much bandwidth and energy" (§4.2);
// this study quantifies the energy half of that claim with the
// metrics.EnergyModel.
type LifetimeConfig struct {
	Seed int64
	// Side of the grid (default 8).
	Side int
	// Duration measured before extrapolating (default 10 minutes).
	Duration time.Duration
	// Workload name (default C).
	Workload string
	// Energy model; zero values take mica2-flavoured defaults.
	Energy metrics.EnergyModel
	// Parallelism caps the worker pool running independent schemes (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *LifetimeConfig) setDefaults() {
	if c.Side == 0 {
		c.Side = 8
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if c.Workload == "" {
		c.Workload = "C"
	}
}

// LifetimeRow is one scheme's energy outcome.
type LifetimeRow struct {
	Scheme network.Scheme
	// TotalJ is the network-wide energy spent during the measured interval.
	TotalJ float64
	// Lifetime is the extrapolated time until the busiest sensor node
	// exhausts its battery.
	Lifetime time.Duration
	// GainPct is the lifetime extension over the baseline.
	GainPct float64
}

// RunLifetime measures energy consumption and extrapolated network lifetime
// for all four schemes under one workload. Expected shape: lifetime
// ordering mirrors the transmission-time ordering of Figure 3 — radio work
// dominates the energy budget, so sharing extends lifetime.
func RunLifetime(cfg LifetimeConfig) ([]LifetimeRow, error) {
	cfg.setDefaults()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	ws, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	schemes := network.AllSchemes()
	rows, err := sweep(cfg.Parallelism, cfg.Timing, schemes, func(scheme network.Scheme) (LifetimeRow, error) {
		s, err := network.New(network.Config{
			Topo:           topo,
			Scheme:         scheme,
			Seed:           cfg.Seed,
			Radio:          radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
			DiscardResults: true,
		})
		if err != nil {
			return LifetimeRow{}, err
		}
		for _, w := range ws {
			s.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				s.CancelAt(w.Depart, w.Query.ID)
			}
		}
		s.Run(cfg.Duration)
		return LifetimeRow{
			Scheme:   scheme,
			TotalJ:   s.Metrics().TotalEnergy(cfg.Energy),
			Lifetime: s.Metrics().NetworkLifetime(cfg.Duration, cfg.Energy),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var baseline time.Duration
	for _, r := range rows {
		if r.Scheme == network.Baseline {
			baseline = r.Lifetime
		}
	}
	for i := range rows {
		if baseline > 0 {
			rows[i].GainPct = (rows[i].Lifetime.Seconds() - baseline.Seconds()) / baseline.Seconds() * 100
		}
	}
	return rows, nil
}

// LifetimeString renders the study as a text table.
func LifetimeString(rows []LifetimeRow) string {
	out := fmt.Sprintf("%-13s %10s %14s %9s\n", "scheme", "energy(J)", "lifetime", "gain")
	for _, r := range rows {
		out += fmt.Sprintf("%-13s %10.1f %14s %+8.1f%%\n",
			r.Scheme, r.TotalJ, r.Lifetime.Round(time.Hour), r.GainPct)
	}
	return out
}
