package experiments

import (
	"testing"
	"time"

	"repro/internal/network"
)

func TestScalingShapes(t *testing.T) {
	rows, err := RunScaling(ScalingConfig{Seed: 1, Sides: []int{4, 8, 10}, Duration: 4 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	base := map[int]ScalingRow{}
	opt := map[int]ScalingRow{}
	for _, r := range rows {
		if r.Scheme == network.Baseline {
			base[r.Nodes] = r
		} else {
			opt[r.Nodes] = r
		}
	}
	// Baseline cost grows with size; TTMQO always cheaper; savings do not
	// collapse as the network grows.
	if !(base[16].AvgTxPct < base[64].AvgTxPct && base[64].AvgTxPct < base[100].AvgTxPct) {
		t.Errorf("baseline not growing: %v %v %v", base[16].AvgTxPct, base[64].AvgTxPct, base[100].AvgTxPct)
	}
	for _, n := range []int{16, 64, 100} {
		if opt[n].AvgTxPct >= base[n].AvgTxPct {
			t.Errorf("%d nodes: TTMQO not cheaper", n)
		}
		if opt[n].SavingsPct < 50 {
			t.Errorf("%d nodes: savings %.1f%% too low", n, opt[n].SavingsPct)
		}
		if opt[n].MeanLatencyMS <= 0 {
			t.Errorf("%d nodes: no latency recorded", n)
		}
	}
	if s := ScalingString(rows); s == "" {
		t.Error("empty render")
	}
}
