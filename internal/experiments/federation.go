package experiments

import (
	"fmt"
	"time"

	"repro/internal/federation"
	"repro/internal/query"
)

// FederationScalingConfig parametrizes the shard-count scaling study: a
// fixed per-shard world and subscriber load, swept over fleet sizes. The
// router advances shards in parallel, so downstream delivery throughput
// should grow near-linearly with the shard count.
type FederationScalingConfig struct {
	Seed int64
	// Shards lists the fleet sizes swept (default 1, 2, 4, 8).
	Shards []int
	// Side is each shard's grid side (default 3 — 8 sensors per shard).
	Side int
	// SubsPerShard is the number of downstream sessions added per shard,
	// holding per-shard load constant across the sweep (default 4).
	SubsPerShard int
	// Quantum is the virtual time per round; queries use it as their epoch
	// duration (default 8192ms, the serving tier's default).
	Quantum time.Duration
	// Rounds is the number of advance/drain rounds measured (default 8).
	Rounds int
}

func (c *FederationScalingConfig) setDefaults() {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Side <= 0 {
		c.Side = 3
	}
	if c.SubsPerShard <= 0 {
		c.SubsPerShard = 4
	}
	if c.Quantum <= 0 {
		c.Quantum = 8192 * time.Millisecond
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
}

// FederationScalingRow is one fleet-size cell. The counter fields are
// deterministic functions of configuration and seed; the wall-clock
// fields (tagged json:"-") vary run to run and stay out of JSON exports.
type FederationScalingRow struct {
	Shards   int `json:"shards"`
	Sensors  int `json:"sensors"`
	Sessions int `json:"sessions"`
	Subs     int `json:"subs"`
	Trees    int `json:"trees"`
	// Upstreams is the canonical shard-side subscription count after dedup.
	Upstreams int `json:"upstreams"`
	// Updates/Rows are downstream deliveries over the measured rounds;
	// PartialUpdates the per-shard partials they were merged from.
	Updates        int64 `json:"updates"`
	Rows           int64 `json:"rows"`
	MergedEpochs   int64 `json:"merged_epochs"`
	PartialUpdates int64 `json:"partial_updates"`
	// UpdatesPerSec is downstream delivery throughput against wall clock;
	// Speedup normalizes it to the sweep's first row.
	UpdatesPerSec  float64 `json:"-"`
	Speedup        float64 `json:"-"`
	MergeLatencyUS float64 `json:"-"`
}

// RunFederationScaling sweeps fleet sizes, one cell at a time so each
// cell's wall clock is honest. Every session subscribes to its shard's
// full-region acquisition (deduped to one canonical upstream per shard)
// plus a cross-shard recombining aggregate, so per-shard load is constant
// and total subscriber throughput should scale with the fleet.
func RunFederationScaling(cfg FederationScalingConfig) ([]FederationScalingRow, error) {
	cfg.setDefaults()
	rows := make([]FederationScalingRow, 0, len(cfg.Shards))
	for _, k := range cfg.Shards {
		row, err := runFederationCell(cfg, k)
		if err != nil {
			return nil, fmt.Errorf("federation scaling, %d shards: %w", k, err)
		}
		rows = append(rows, row)
	}
	if len(rows) > 0 && rows[0].UpdatesPerSec > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].UpdatesPerSec / rows[0].UpdatesPerSec
		}
	}
	return rows, nil
}

func runFederationCell(cfg FederationScalingConfig, shards int) (FederationScalingRow, error) {
	rt, err := federation.New(federation.Config{
		Shards: shards,
		Side:   cfg.Side,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return FederationScalingRow{}, err
	}
	defer rt.Close()

	spn := cfg.Side*cfg.Side - 1
	epochMS := int64(cfg.Quantum / time.Millisecond)
	agg := query.MustParse(fmt.Sprintf("SELECT MAX(light), AVG(light) EPOCH DURATION %d", epochMS))
	var tickets []*federation.Ticket
	for i := 0; i < shards*cfg.SubsPerShard; i++ {
		sess, err := rt.Register(fmt.Sprintf("fed-%d", i))
		if err != nil {
			return FederationScalingRow{}, err
		}
		base := (i % shards) * spn
		region := query.MustParse(fmt.Sprintf(
			"SELECT nodeid, light WHERE nodeid >= %d AND nodeid <= %d EPOCH DURATION %d",
			base+1, base+spn, epochMS))
		for _, q := range []query.Query{region, agg} {
			tk, err := sess.SubscribeAsync(q)
			if err != nil {
				return FederationScalingRow{}, err
			}
			tickets = append(tickets, tk)
		}
	}
	if _, err := rt.Advance(cfg.Quantum); err != nil {
		return FederationScalingRow{}, err
	}
	subs := make([]*federation.Sub, 0, len(tickets))
	for _, tk := range tickets {
		sub, err := tk.Wait()
		if err != nil {
			return FederationScalingRow{}, err
		}
		subs = append(subs, sub)
	}

	var updates, rowCount int64
	drain := func(sub *federation.Sub) {
		for {
			select {
			case u := <-sub.Updates():
				updates++
				rowCount += int64(len(u.Rows))
			default:
				return
			}
		}
	}
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		if _, err := rt.Advance(cfg.Quantum); err != nil {
			return FederationScalingRow{}, err
		}
		for _, sub := range subs {
			drain(sub)
		}
	}
	elapsed := time.Since(start)

	st := rt.FedStats()
	row := FederationScalingRow{
		Shards:         shards,
		Sensors:        shards * spn,
		Sessions:       shards * cfg.SubsPerShard,
		Subs:           len(subs),
		Trees:          st.Trees,
		Upstreams:      st.UpstreamSubs,
		Updates:        updates,
		Rows:           rowCount,
		MergedEpochs:   st.MergedEpochs,
		PartialUpdates: st.PartialUpdates,
		MergeLatencyUS: float64(rt.MergeLatency()) / float64(time.Microsecond),
	}
	if s := elapsed.Seconds(); s > 0 {
		row.UpdatesPerSec = float64(updates) / s
	}
	return row, nil
}

// FederationScalingString renders the study as a text table.
func FederationScalingString(rows []FederationScalingRow) string {
	out := fmt.Sprintf("%6s %7s %8s %5s %5s %9s %8s %8s %10s %8s %9s\n",
		"shards", "sensors", "sessions", "subs", "trees", "upstreams", "updates", "rows", "upd/s", "speedup", "merge(us)")
	for _, r := range rows {
		out += fmt.Sprintf("%6d %7d %8d %5d %5d %9d %8d %8d %10.0f %7.2fx %9.0f\n",
			r.Shards, r.Sensors, r.Sessions, r.Subs, r.Trees, r.Upstreams,
			r.Updates, r.Rows, r.UpdatesPerSec, r.Speedup, r.MergeLatencyUS)
	}
	return out
}
