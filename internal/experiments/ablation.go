package experiments

import (
	"fmt"
	"time"

	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
)

// AblationConfig parametrizes the tier-2 ablation study: the full TTMQO
// scheme with individual §3.2 mechanisms disabled, on WORKLOAD_C (the mixed
// workload where every mechanism has something to do).
type AblationConfig struct {
	Seed int64
	// Side of the grid (default 8 — the mechanisms matter more at size).
	Side int
	// Duration per run (default 10 minutes).
	Duration time.Duration
	// Workload name: A, B, C, or "moderate" (default) — a Figure 5-style
	// mixed workload at selectivity 0.4, where only part of the network
	// holds data and the routing/sleep mechanisms have room to act.
	Workload string
	// Parallelism caps the worker pool running independent variants (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *AblationConfig) setDefaults() {
	if c.Side == 0 {
		c.Side = 8
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if c.Workload == "" {
		c.Workload = "moderate"
	}
}

// AblationRow is one variant of the study.
type AblationRow struct {
	Variant string
	// AvgTxPct is the average transmission time (%).
	AvgTxPct float64
	// DeltaPct is the increase relative to full TTMQO (positive = the
	// removed mechanism was saving traffic).
	DeltaPct float64
	Messages int
}

// ablationVariants lists the studied policy reductions. Each removes one
// design choice DESIGN.md calls out.
func ablationVariants() []struct {
	name   string
	mutate func(*node.Policy)
} {
	return []struct {
		name   string
		mutate func(*node.Policy)
	}{
		{"full", func(*node.Policy) {}},
		{"-alignment", func(p *node.Policy) { p.AlignedEpochs = false }},
		{"-dag", func(p *node.Policy) { p.QueryAwareDAG = false; p.Multicast = false; p.Sleep = false }},
		{"-packing", func(p *node.Policy) { p.SharedMessages = false }},
		{"-multicast", func(p *node.Policy) { p.Multicast = false }},
		{"-sleep", func(p *node.Policy) { p.Sleep = false }},
		{"tier1-only", func(p *node.Policy) { *p = node.Policy{AlignedEpochs: true} }},
	}
}

// RunAblation measures the contribution of each tier-2 mechanism: full
// TTMQO versus TTMQO with one mechanism removed.
//
// Note the -alignment variant also changes result timing (epochs revert to
// injection phases), which is why tier 1 normally requires alignment; it is
// included to quantify the cost of losing shared sampling instants.
func RunAblation(cfg AblationConfig) ([]AblationRow, error) {
	cfg.setDefaults()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	var ws []workload.TimedQuery
	if cfg.Workload == "moderate" {
		ws = workload.Selectivity(workload.SelectivityConfig{
			Seed:        cfg.Seed,
			NumQueries:  8,
			AggFraction: 0.5,
			Selectivity: 0.4,
			Nodes:       topo.Size(),
		})
	} else {
		ws, err = workload.ByName(cfg.Workload)
		if err != nil {
			return nil, err
		}
	}
	variants := ablationVariants()
	rows, err := runner.MapTimed(cfg.Parallelism, len(variants), cfg.Timing, func(i int) (AblationRow, error) {
		policy := node.InNetwork()
		variants[i].mutate(&policy)
		s, err := network.New(network.Config{
			Topo:           topo,
			Scheme:         network.TTMQO,
			Seed:           cfg.Seed,
			Radio:          radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
			PolicyOverride: &policy,
			DiscardResults: true,
		})
		if err != nil {
			return AblationRow{}, err
		}
		for _, w := range ws {
			s.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				s.CancelAt(w.Depart, w.Query.ID)
			}
		}
		s.Run(cfg.Duration)
		return AblationRow{
			Variant:  variants[i].name,
			AvgTxPct: s.AvgTransmissionTime() * 100,
			Messages: s.Metrics().Messages(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var fullTx float64
	for _, r := range rows {
		if r.Variant == "full" {
			fullTx = r.AvgTxPct
		}
	}
	for i := range rows {
		if fullTx > 0 {
			rows[i].DeltaPct = (rows[i].AvgTxPct - fullTx) / fullTx * 100
		}
	}
	return rows, nil
}

// AblationString renders the study as a text table.
func AblationString(rows []AblationRow) string {
	out := fmt.Sprintf("%-12s %10s %10s %9s\n", "variant", "avgTx(%)", "vs full", "messages")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %10.4f %+9.1f%% %9d\n", r.Variant, r.AvgTxPct, r.DeltaPct, r.Messages)
	}
	return out
}
