package experiments

import (
	"testing"
	"time"
)

func runFedSweep(t *testing.T) []FederationScalingRow {
	t.Helper()
	rows, err := RunFederationScaling(FederationScalingConfig{
		Seed:   1,
		Shards: []int{1, 2, 4},
		Rounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	return rows
}

// TestFederationScalingLinear asserts the sweep's structural shape: with
// per-shard load held constant, downstream deliveries, sessions and
// upstream subscriptions all scale exactly with the shard count.
func TestFederationScalingLinear(t *testing.T) {
	rows := runFedSweep(t)
	base := rows[0]
	if base.Updates == 0 || base.Rows == 0 {
		t.Fatalf("single-shard cell delivered nothing: %+v", base)
	}
	if base.Trees != 2 {
		t.Fatalf("single-shard trees = %d, want 2 (region + aggregate)", base.Trees)
	}
	for _, r := range rows[1:] {
		k := int64(r.Shards)
		if r.Sessions != r.Shards*4 || r.Subs != r.Shards*8 {
			t.Errorf("%d shards: sessions/subs = %d/%d, want %d/%d",
				r.Shards, r.Sessions, r.Subs, r.Shards*4, r.Shards*8)
		}
		// One deduped region upstream per shard plus the aggregate's slice
		// on every shard.
		if r.Upstreams != 2*r.Shards {
			t.Errorf("%d shards: upstreams = %d, want %d", r.Shards, r.Upstreams, 2*r.Shards)
		}
		if r.Updates != k*base.Updates {
			t.Errorf("%d shards: updates = %d, want %d (linear in shard count)",
				r.Shards, r.Updates, k*base.Updates)
		}
		if r.Rows != k*base.Rows {
			t.Errorf("%d shards: rows = %d, want %d", r.Shards, r.Rows, k*base.Rows)
		}
		if r.UpdatesPerSec <= 0 {
			t.Errorf("%d shards: throughput not measured", r.Shards)
		}
	}
}

// TestFederationScalingDeterministic reruns the sweep and asserts every
// deterministic field is identical; wall-clock fields are exempt.
func TestFederationScalingDeterministic(t *testing.T) {
	a := runFedSweep(t)
	b := runFedSweep(t)
	for i := range a {
		x, y := a[i], b[i]
		x.UpdatesPerSec, y.UpdatesPerSec = 0, 0
		x.Speedup, y.Speedup = 0, 0
		x.MergeLatencyUS, y.MergeLatencyUS = 0, 0
		if x != y {
			t.Errorf("row %d differs between runs:\n first:  %+v\n second: %+v", i, x, y)
		}
	}
}

// TestFederationScalingDefaults covers the default sweep shape without
// running it end to end.
func TestFederationScalingDefaults(t *testing.T) {
	var cfg FederationScalingConfig
	cfg.setDefaults()
	if len(cfg.Shards) != 4 || cfg.Shards[3] != 8 {
		t.Fatalf("default shard sweep = %v", cfg.Shards)
	}
	if cfg.Side != 3 || cfg.SubsPerShard != 4 || cfg.Rounds != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Quantum != 8192*time.Millisecond {
		t.Fatalf("default quantum = %v", cfg.Quantum)
	}
}
