package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/runner"
)

// ReportConfig parametrizes a full evaluation run (every figure and every
// extension study).
type ReportConfig struct {
	Seed int64
	// Duration per packet-level run (default 10 minutes).
	Duration time.Duration
	// Runs per stochastic point (default 3).
	Runs int
	// Parallelism caps each study's worker pool (<= 0: one worker per
	// CPU). Result rows are identical at any setting.
	Parallelism int
}

func (c *ReportConfig) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
}

// StudyTiming is one study's wall-clock accounting within a report.
type StudyTiming struct {
	Study  string
	Timing runner.Timing
}

// Report bundles the results of one full evaluation run.
type Report struct {
	Config      ReportConfig
	Fig2        []Fig2Row
	Fig3        []Fig3Row
	Fig4A       []Fig4Point
	Fig4B       []Fig4Point
	Fig4C       []Fig4Point
	Fig5        []Fig5Row
	Ablation    []AblationRow
	Reliability []ReliabilityRow
	Chaos       []ChaosRow
	Lifetime    []LifetimeRow
	Scaling     []ScalingRow
	Federation  []FederationScalingRow
	Share       []ShareStudyRow
	// Timings records each study's cell count, wall clock and speedup.
	Timings []StudyTiming
	Elapsed time.Duration
}

// RunAll executes every study and returns the bundled report, including
// per-study wall-clock timing. The overall Elapsed is measured by the
// caller and stored if desired.
func RunAll(cfg ReportConfig) (*Report, error) {
	cfg.setDefaults()
	r := &Report{Config: cfg, Timings: make([]StudyTiming, 0, 10)}
	// timed registers a study slot and returns its Timing destination; the
	// slice is preallocated so the pointer stays valid across appends.
	timed := func(study string) *runner.Timing {
		r.Timings = append(r.Timings, StudyTiming{Study: study})
		return &r.Timings[len(r.Timings)-1].Timing
	}
	var err error
	if r.Fig2, err = RunFigure2Example(); err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}
	if r.Fig3, err = RunFigure3(Fig3Config{Seed: cfg.Seed, Duration: cfg.Duration,
		Parallelism: cfg.Parallelism, Timing: timed("figure 3")}); err != nil {
		return nil, fmt.Errorf("figure 3: %w", err)
	}
	if r.Fig4A, err = RunFigure4A(Fig4Config{Seed: cfg.Seed, Runs: cfg.Runs,
		Parallelism: cfg.Parallelism, Timing: timed("figure 4a")}); err != nil {
		return nil, fmt.Errorf("figure 4a: %w", err)
	}
	if r.Fig4B, err = RunFigure4B(Fig4Config{Seed: cfg.Seed, Runs: cfg.Runs, Side: 8,
		Parallelism: cfg.Parallelism, Timing: timed("figure 4b")}); err != nil {
		return nil, fmt.Errorf("figure 4b: %w", err)
	}
	if r.Fig4C, err = RunFigure4C(Fig4Config{Seed: cfg.Seed, Runs: cfg.Runs,
		Parallelism: cfg.Parallelism, Timing: timed("figure 4c")}); err != nil {
		return nil, fmt.Errorf("figure 4c: %w", err)
	}
	if r.Fig5, err = RunFigure5(Fig5Config{Seed: cfg.Seed, Duration: cfg.Duration, Runs: cfg.Runs,
		Parallelism: cfg.Parallelism, Timing: timed("figure 5")}); err != nil {
		return nil, fmt.Errorf("figure 5: %w", err)
	}
	if r.Ablation, err = RunAblation(AblationConfig{Seed: cfg.Seed, Duration: cfg.Duration,
		Parallelism: cfg.Parallelism, Timing: timed("ablation")}); err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	if r.Reliability, err = RunReliability(ReliabilityConfig{Seed: cfg.Seed, Duration: cfg.Duration,
		Parallelism: cfg.Parallelism, Timing: timed("reliability")}); err != nil {
		return nil, fmt.Errorf("reliability: %w", err)
	}
	if r.Chaos, err = RunChaos(ChaosConfig{Seed: cfg.Seed,
		Parallelism: cfg.Parallelism, Timing: timed("chaos")}); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if r.Lifetime, err = RunLifetime(LifetimeConfig{Seed: cfg.Seed, Duration: cfg.Duration,
		Parallelism: cfg.Parallelism, Timing: timed("lifetime")}); err != nil {
		return nil, fmt.Errorf("lifetime: %w", err)
	}
	if r.Scaling, err = RunScaling(ScalingConfig{Seed: cfg.Seed, Duration: cfg.Duration,
		Parallelism: cfg.Parallelism, Timing: timed("scaling")}); err != nil {
		return nil, fmt.Errorf("scaling: %w", err)
	}
	// Federation cells run sequentially on purpose: each cell's wall clock
	// feeds its throughput gauge, so no worker pool and no Timing slot.
	if r.Federation, err = RunFederationScaling(FederationScalingConfig{Seed: cfg.Seed}); err != nil {
		return nil, fmt.Errorf("federation scaling: %w", err)
	}
	if r.Share, err = RunShareStudy(ShareStudyConfig{Seed: cfg.Seed}); err != nil {
		return nil, fmt.Errorf("share study: %w", err)
	}
	return r, nil
}

// Markdown renders the report as a self-contained document.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# TTMQO evaluation report\n\n")
	fmt.Fprintf(&b, "Seed %d · %v per packet-level run · %d seeds per stochastic point",
		r.Config.Seed, r.Config.Duration, r.Config.Runs)
	if r.Elapsed > 0 {
		fmt.Fprintf(&b, " · generated in %v", r.Elapsed.Round(time.Second))
	}
	b.WriteString("\n\n")

	b.WriteString("## Figure 2 — worked example (§3.2.2)\n\n")
	b.WriteString("| mode | acquisition msgs | involved nodes | aggregation msgs |\n|---|---|---|---|\n")
	for _, row := range r.Fig2 {
		fmt.Fprintf(&b, "| %s | %d (paper: %d) | %d (paper: %d) | %d (paper: %d) |\n",
			row.Mode, row.AcqMessages, row.WantAcqMessages,
			row.AcqNodes, row.WantAcqNodes, row.AggMessages, row.WantAggMessages)
	}

	b.WriteString("\n## Figure 3 — average transmission time\n\n")
	b.WriteString("| workload | nodes | scheme | avgTx (%) | savings (%) | messages | retrans |\n|---|---|---|---|---|---|---|\n")
	for _, row := range r.Fig3 {
		fmt.Fprintf(&b, "| %s | %d | %s | %.4f | %.1f | %d | %d |\n",
			row.Workload, row.Nodes, row.Scheme, row.AvgTxPct, row.SavingsPct,
			row.Messages, row.Retransmissions)
	}

	b.WriteString("\n## Figure 4(a) — benefit ratio vs concurrency (α = 0.6)\n\n")
	writeFig4Table(&b, r.Fig4A)
	b.WriteString("\n## Figure 4(b) — benefit ratio vs α (8 concurrent, 64-node model)\n\n")
	writeFig4Table(&b, r.Fig4B)
	b.WriteString("\n## Figure 4(c) — synthetic query count\n\n")
	writeFig4Table(&b, r.Fig4C)

	b.WriteString("\n## Figure 5 — savings vs predicate selectivity\n\n")
	b.WriteString("| agg mix | selectivity | baseline (%) | ttmqo (%) | savings (%) | ±σ |\n|---|---|---|---|---|---|\n")
	for _, row := range r.Fig5 {
		fmt.Fprintf(&b, "| %.0f%% | %.1f | %.4f | %.4f | %.1f | %.1f |\n",
			row.AggFraction*100, row.Selectivity, row.BaselineTxPct, row.TTMQOTxPct,
			row.SavingsPct, row.SavingsStd)
	}

	b.WriteString("\n## Tier-2 mechanism ablation (extension)\n\n")
	b.WriteString("| variant | avgTx (%) | vs full | messages |\n|---|---|---|---|\n")
	for _, row := range r.Ablation {
		fmt.Fprintf(&b, "| %s | %.4f | %+.1f%% | %d |\n",
			row.Variant, row.AvgTxPct, row.DeltaPct, row.Messages)
	}

	b.WriteString("\n## Reliability under node failures (extension)\n\n")
	b.WriteString("| scheme | MTBF | completeness | failures | avgTx (%) |\n|---|---|---|---|---|\n")
	for _, row := range r.Reliability {
		mtbf := "none"
		if row.MTBF > 0 {
			mtbf = row.MTBF.String()
		}
		fmt.Fprintf(&b, "| %s | %s | %.1f%% | %d | %.4f |\n",
			row.Scheme, mtbf, row.Completeness*100, row.Failures, row.AvgTxPct)
	}

	b.WriteString("\n## Chaos & crash recovery (extension)\n\n")
	b.WriteString("| scenario | faults | crashes | reconnects | completeness | dup | gaps | violations |\n|---|---|---|---|---|---|---|---|\n")
	for _, row := range r.Chaos {
		v := "none"
		if len(row.Violations) > 0 {
			v = strings.Join(row.Violations, "; ")
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1f%% | %d | %d | %s |\n",
			row.Scenario, row.FaultEvents, row.Crashes, row.Reconnects,
			row.Completeness*100, row.Duplicates, row.Gaps, v)
	}

	b.WriteString("\n## Scaling with network size (extension)\n\n")
	b.WriteString("| nodes | scheme | avgTx (%) | savings (%) | latency (ms) | messages |\n|---|---|---|---|---|---|\n")
	for _, row := range r.Scaling {
		fmt.Fprintf(&b, "| %d | %s | %.4f | %.1f | %.0f | %d |\n",
			row.Nodes, row.Scheme, row.AvgTxPct, row.SavingsPct, row.MeanLatencyMS, row.Messages)
	}

	b.WriteString("\n## Federation scaling with shard count (extension)\n\n")
	b.WriteString("Constant per-shard world and subscriber load; the router advances\nshards in parallel and recombines partial aggregates at a shared\nwatermark. Delivered updates scale exactly with the fleet; upd/s and\nspeedup are wall-clock and vary with the host's core count.\n\n")
	b.WriteString("| shards | sensors | sessions | subs | upstreams | updates | merged epochs | upd/s | speedup |\n|---|---|---|---|---|---|---|---|---|\n")
	for _, row := range r.Federation {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d | %d | %.0f | %.2fx |\n",
			row.Shards, row.Sensors, row.Sessions, row.Subs, row.Upstreams,
			row.Updates, row.MergedEpochs, row.UpdatesPerSec, row.Speedup)
	}

	b.WriteString("\n## Cross-query sharing at the gateway (extension)\n\n")
	b.WriteString("Each overlap factor runs the same subscriber population twice: straight\nagainst the gateway (tier-1 exact dedup only) and through the\n`internal/share` coordinator (partial-aggregate CSE + windowed result\ncache). At overlap 0 every query is a single grid cell, so sharing can\nonly tie; as regions widen and coincide, fragment reuse cuts the\ndistinct queries injected into the network, and the warm cache replays\nrecent epochs so late subscribers skip the cold first-epoch wait.\n\n")
	b.WriteString("| overlap | sharing | upstream | messages | cold ttfr95 (ms) | late ttfr95 (ms) | fragment reuse | cache hits |\n|---|---|---|---|---|---|---|---|\n")
	for _, row := range r.Share {
		mode := "off"
		if row.Sharing {
			mode = "on"
		}
		fmt.Fprintf(&b, "| %.2f | %s | %d | %d | %.0f | %.0f | %.2f | %.2f |\n",
			row.Overlap, mode, row.Upstream, row.Messages,
			row.ColdTTFR95MS, row.LateTTFR95MS, row.FragmentReuse, row.CacheHitRatio)
	}

	b.WriteString("\n## Energy & network lifetime (extension)\n\n")
	b.WriteString("| scheme | energy (J) | lifetime | gain |\n|---|---|---|---|\n")
	for _, row := range r.Lifetime {
		fmt.Fprintf(&b, "| %s | %.1f | %s | %+.1f%% |\n",
			row.Scheme, row.TotalJ, row.Lifetime.Round(time.Hour), row.GainPct)
	}

	if len(r.Timings) > 0 {
		b.WriteString("\n## Wall-clock timing (parallel runner)\n\n")
		b.WriteString("Cells are independent simulation worlds fanned across the worker\npool; rows are reassembled in input order, so results are identical at\nany parallelism.\n\n")
		b.WriteString("| study | cells | workers | wall | cpu | speedup | max cell |\n|---|---|---|---|---|---|---|\n")
		for _, st := range r.Timings {
			tm := st.Timing
			fmt.Fprintf(&b, "| %s | %d | %d | %v | %v | %.1fx | %v |\n",
				st.Study, len(tm.Cells), tm.Workers,
				tm.Wall.Round(time.Millisecond), tm.Total().Round(time.Millisecond),
				tm.Speedup(), tm.Max().Round(time.Millisecond))
		}
	}
	b.WriteString("\n")
	return b.String()
}

func writeFig4Table(b *strings.Builder, pts []Fig4Point) {
	b.WriteString("| concurrency | α | benefit (%) | ±σ | avg synthetic | reinjections |\n|---|---|---|---|---|---|\n")
	for _, p := range pts {
		fmt.Fprintf(b, "| %d | %.2f | %.1f | %.1f | %.2f | %d |\n",
			p.Concurrency, p.Alpha, p.BenefitRatio*100, p.BenefitStd*100,
			p.AvgSynthetic, p.Reinjections)
	}
}
