package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ScalingConfig parametrizes the network-size scaling study — an extension
// of Figure 3's two sizes (16 and 64 nodes) to a full curve.
type ScalingConfig struct {
	Seed int64
	// Sides lists the grid side lengths swept (default 4, 6, 8, 10, 12 —
	// 16 to 144 nodes).
	Sides []int
	// Duration per run (default 10 minutes).
	Duration time.Duration
	// Workload name (default A — the workload both tiers share).
	Workload string
	// Parallelism caps the worker pool running independent cells (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *ScalingConfig) setDefaults() {
	if len(c.Sides) == 0 {
		c.Sides = []int{4, 6, 8, 10, 12}
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if c.Workload == "" {
		c.Workload = "A"
	}
}

// ScalingRow is one (size, scheme) cell.
type ScalingRow struct {
	Nodes  int
	Scheme network.Scheme
	// AvgTxPct is the average transmission time (%).
	AvgTxPct float64
	// SavingsPct is the reduction versus the baseline at the same size.
	SavingsPct float64
	// MeanLatencyMS is the mean result-delivery latency.
	MeanLatencyMS float64
	Messages      int
	// TTFRP50MS / TTFRP95MS summarize the per-query lifecycle spans: the
	// virtual time from admission to first delivered result (median and
	// 95th percentile, milliseconds). Zero when no query produced results.
	TTFRP50MS float64
	TTFRP95MS float64
}

// RunScaling measures how the baseline's and TTMQO's transmission time and
// result latency evolve with network size. Expected shape: the baseline's
// cost grows superlinearly (more relaying, more contention, more
// retransmissions), TTMQO's much slower — so the savings percentage grows
// with size, extending the Figure 3 observation into a curve.
func RunScaling(cfg ScalingConfig) ([]ScalingRow, error) {
	cfg.setDefaults()
	ws, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	type cell struct {
		side   int
		scheme network.Scheme
	}
	var cells []cell
	for _, side := range cfg.Sides {
		for _, scheme := range []network.Scheme{network.Baseline, network.TTMQO} {
			cells = append(cells, cell{side, scheme})
		}
	}
	rows, err := sweep(cfg.Parallelism, cfg.Timing, cells, func(c cell) (ScalingRow, error) {
		topo, err := topology.PaperGrid(c.side)
		if err != nil {
			return ScalingRow{}, err
		}
		s, err := network.New(network.Config{
			Topo:           topo,
			Scheme:         c.scheme,
			Seed:           cfg.Seed,
			Radio:          radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
			DiscardResults: true,
		})
		if err != nil {
			return ScalingRow{}, err
		}
		for _, w := range ws {
			s.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				s.CancelAt(w.Depart, w.Query.ID)
			}
		}
		s.Run(cfg.Duration)
		row := ScalingRow{
			Nodes:         topo.Size(),
			Scheme:        c.scheme,
			AvgTxPct:      s.AvgTransmissionTime() * 100,
			MeanLatencyMS: s.Metrics().Latency().Mean() * 1000,
			Messages:      s.Metrics().Messages(),
		}
		if sm := obs.SummarizeSpans(s.Spans().Snapshot()); sm != nil {
			row.TTFRP50MS = sm.TTFRP50MS
			row.TTFRP95MS = sm.TTFRP95MS
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	baseline := make(map[int]float64, len(cfg.Sides))
	for _, r := range rows {
		if r.Scheme == network.Baseline {
			baseline[r.Nodes] = r.AvgTxPct
		}
	}
	for i := range rows {
		rows[i].SavingsPct = metrics.Savings(baseline[rows[i].Nodes], rows[i].AvgTxPct) * 100
	}
	return rows, nil
}

// ScalingString renders the study as a text table.
func ScalingString(rows []ScalingRow) string {
	out := fmt.Sprintf("%6s %-13s %10s %9s %12s %9s %10s %10s\n",
		"nodes", "scheme", "avgTx(%)", "save(%)", "latency(ms)", "messages", "ttfr50(ms)", "ttfr95(ms)")
	for _, r := range rows {
		out += fmt.Sprintf("%6d %-13s %10.4f %9.1f %12.0f %9d %10.0f %10.0f\n",
			r.Nodes, r.Scheme, r.AvgTxPct, r.SavingsPct, r.MeanLatencyMS, r.Messages, r.TTFRP50MS, r.TTFRP95MS)
	}
	return out
}
