package experiments

import (
	"encoding/json"
	"testing"
)

// TestChaosStudyInvariants: every builtin scenario must run clean — zero
// duplicates everywhere, zero gaps, no invariant violations — while the
// fault scenarios still visibly bite (crash cycles happen, completeness
// dips under churn).
func TestChaosStudyInvariants(t *testing.T) {
	rows, err := RunChaos(ChaosConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var crashes int
	for _, r := range rows {
		if len(r.Violations) != 0 {
			t.Errorf("%s: violations %v", r.Scenario, r.Violations)
		}
		if r.Duplicates != 0 || r.Gaps != 0 {
			t.Errorf("%s: duplicates=%d gaps=%d", r.Scenario, r.Duplicates, r.Gaps)
		}
		if r.Updates == 0 {
			t.Errorf("%s: no deliveries", r.Scenario)
		}
		crashes += r.Crashes
	}
	if crashes == 0 {
		t.Fatal("no scenario crashed the gateway; the study is not exercising recovery")
	}
	if s := ChaosString(rows); len(s) == 0 {
		t.Fatal("empty table")
	}
}

// TestChaosStudyDeterministicAcrossParallelism is the determinism
// acceptance criterion: the same scenarios and seed must yield
// byte-identical JSON rows at 1 worker and at 8.
func TestChaosStudyDeterministicAcrossParallelism(t *testing.T) {
	one, err := RunChaos(ChaosConfig{Seed: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunChaos(ChaosConfig{Seed: 2, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(one)
	jb, _ := json.Marshal(eight)
	if string(ja) != string(jb) {
		t.Fatalf("chaos study diverged across parallelism:\n1 worker: %s\n8 workers: %s", ja, jb)
	}
}
