package experiments

import (
	"testing"
	"time"

	"repro/internal/network"
)

func TestLifetimeShapes(t *testing.T) {
	rows, err := RunLifetime(LifetimeConfig{Seed: 1, Side: 4, Duration: 4 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := make(map[network.Scheme]LifetimeRow, len(rows))
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	base := byScheme[network.Baseline]
	full := byScheme[network.TTMQO]
	if base.TotalJ <= 0 || base.Lifetime <= 0 {
		t.Fatalf("baseline consumed nothing: %+v", base)
	}
	// TTMQO spends less energy and lives longer.
	if full.TotalJ >= base.TotalJ {
		t.Errorf("TTMQO energy %.1fJ >= baseline %.1fJ", full.TotalJ, base.TotalJ)
	}
	if full.Lifetime <= base.Lifetime {
		t.Errorf("TTMQO lifetime %v <= baseline %v", full.Lifetime, base.Lifetime)
	}
	if full.GainPct <= 0 {
		t.Errorf("gain = %.1f%%", full.GainPct)
	}
	if s := LifetimeString(rows); s == "" {
		t.Error("empty render")
	}
}
