package experiments

import (
	"testing"
	"time"

	"repro/internal/network"
)

func TestReliabilityShapes(t *testing.T) {
	rows, err := RunReliability(ReliabilityConfig{
		Seed:     1,
		Side:     4,
		Duration: 4 * time.Minute,
		MTBFs:    []time.Duration{0, 2 * time.Minute, 45 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]ReliabilityRow)
	for _, r := range rows {
		byKey[r.Scheme.String()+r.MTBF.String()] = r
	}
	for _, scheme := range []network.Scheme{network.Baseline, network.TTMQO} {
		healthy := byKey[scheme.String()+time.Duration(0).String()]
		// No failures: near-perfect completeness.
		if healthy.Completeness < 0.97 {
			t.Errorf("%v healthy completeness = %.3f, want ≥ 0.97", scheme, healthy.Completeness)
		}
		if healthy.Failures != 0 {
			t.Errorf("%v healthy run had %d failures", scheme, healthy.Failures)
		}
		// Heavier failure rates degrade completeness but not catastrophically.
		stressed := byKey[scheme.String()+(45*time.Second).String()]
		if stressed.Failures == 0 {
			t.Errorf("%v stressed run had no failures", scheme)
		}
		if stressed.Completeness >= healthy.Completeness {
			t.Errorf("%v: failures should cost completeness: %.3f vs %.3f",
				scheme, stressed.Completeness, healthy.Completeness)
		}
		if stressed.Completeness < 0.5 {
			t.Errorf("%v stressed completeness = %.3f — failover not working?",
				scheme, stressed.Completeness)
		}
	}
	// The optimized scheme must not be clearly more fragile than the
	// baseline under the same failure process.
	bs := byKey[network.Baseline.String()+(2*time.Minute).String()]
	tt := byKey[network.TTMQO.String()+(2*time.Minute).String()]
	if tt.Completeness < bs.Completeness-0.15 {
		t.Errorf("TTMQO far more fragile than baseline: %.3f vs %.3f",
			tt.Completeness, bs.Completeness)
	}
	if s := ReliabilityString(rows); s == "" {
		t.Error("empty render")
	}
}
