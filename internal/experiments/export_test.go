package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// Exported sweep rows must survive a JSON round trip unchanged: export →
// decode → compare against the in-memory rows.
func TestSweepJSONRoundTrip(t *testing.T) {
	rows, err := RunFigure3(Fig3Config{Seed: 1, Duration: 2 * time.Minute, Sides: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	m := SweepManifest("figure 3", 1, 2*time.Minute, 1)
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, m, obs.Study{Name: "figure 3", Rows: rows}); err != nil {
		t.Fatal(err)
	}

	var back struct {
		Manifest obs.Manifest `json:"manifest"`
		Studies  []struct {
			Name string    `json:"name"`
			Rows []Fig3Row `json:"rows"`
		} `json:"studies"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Manifest != m {
		t.Fatalf("manifest changed in round trip:\n  out: %+v\n  back: %+v", m, back.Manifest)
	}
	if len(back.Studies) != 1 || back.Studies[0].Name != "figure 3" {
		t.Fatalf("studies = %+v", back.Studies)
	}
	if !reflect.DeepEqual(back.Studies[0].Rows, rows) {
		t.Fatalf("rows changed in round trip:\n  out: %+v\n  back: %+v", rows, back.Studies[0].Rows)
	}
}

// The paper's evaluation artifacts are published as JSON; the bytes must be
// identical whether the sweep ran serially or fanned across 8 workers.
func TestExportedSweepJSONIdenticalAcrossParallelism(t *testing.T) {
	export := func(par int) []byte {
		t.Helper()
		rows, err := RunFigure3(Fig3Config{
			Seed: 1, Duration: 2 * time.Minute, Sides: []int{4}, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		m := SweepManifest("figure 3", 1, 2*time.Minute, 1)
		if err := WriteSweepJSON(&buf, m, obs.Study{Name: "figure 3", Rows: rows}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := export(1), export(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("exported sweep JSON differs between 1 and 8 workers:\n serial %d bytes, parallel %d bytes",
			len(serial), len(parallel))
	}
}

// Report.Export covers every study and excludes wall-clock timing, so a
// full-report export is reproducible too.
func TestReportExportShape(t *testing.T) {
	r := &Report{
		Config: ReportConfig{Seed: 1, Duration: time.Minute, Runs: 2},
		Fig3:   []Fig3Row{{Workload: "A", Nodes: 16, Scheme: 1, AvgTxPct: 0.4}},
	}
	ex := r.Export()
	if len(ex.Studies) != 11 {
		t.Fatalf("studies = %d, want 11", len(ex.Studies))
	}
	if ex.Manifest.Study != "all" || ex.Manifest.Seed != 1 || ex.Manifest.Runs != 2 {
		t.Fatalf("manifest = %+v", ex.Manifest)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"figure 2", "figure 3", "figure 4a", "figure 4b",
		"figure 4c", "figure 5", "ablation", "reliability", "chaos", "lifetime", "scaling"} {
		if !bytes.Contains(buf.Bytes(), []byte(`"name": "`+name+`"`)) {
			t.Fatalf("study %q missing from export:\n%s", name, out)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("Wall")) || bytes.Contains(buf.Bytes(), []byte("wall")) {
		t.Fatal("wall-clock timing leaked into the export")
	}
}
