package experiments

import (
	"testing"
	"time"
)

func runShareSweep(t *testing.T) []ShareStudyRow {
	t.Helper()
	rows, err := RunShareStudy(ShareStudyConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 (4 overlaps x on/off)", len(rows))
	}
	return rows
}

// TestShareStudyAcceptance pins the study's headline claims: at overlap
// factor >= 0.5 sharing injects strictly fewer tier-1 messages than the
// dedup-only baseline, and the warm cache keeps late-subscriber ttfr95 at
// least 5x below the cold ttfr95. At overlap 0 (single-cell queries,
// fragments coincide with queries) sharing must not cost anything.
func TestShareStudyAcceptance(t *testing.T) {
	rows := runShareSweep(t)
	byKey := make(map[float64]map[bool]ShareStudyRow)
	for _, r := range rows {
		if byKey[r.Overlap] == nil {
			byKey[r.Overlap] = make(map[bool]ShareStudyRow)
		}
		byKey[r.Overlap][r.Sharing] = r
	}
	for f, pair := range byKey {
		off, on := pair[false], pair[true]
		if off.Messages == 0 || on.Messages == 0 {
			t.Fatalf("overlap %.2f: empty message counts: %+v / %+v", f, off, on)
		}
		if f >= 0.5 && on.Messages >= off.Messages {
			t.Errorf("overlap %.2f: sharing injected %d messages, baseline %d — no win",
				f, on.Messages, off.Messages)
		}
		if f == 0 && on.Messages > off.Messages {
			t.Errorf("overlap 0: sharing overhead with nothing to share: %d > %d",
				on.Messages, off.Messages)
		}
		if on.ColdTTFR95MS <= 0 || on.LateTTFR95MS <= 0 {
			t.Fatalf("overlap %.2f: missing TTFR samples: %+v", f, on)
		}
		if on.LateTTFR95MS*5 > on.ColdTTFR95MS {
			t.Errorf("overlap %.2f: warm late ttfr95 %.0fms not 5x below cold %.0fms",
				f, on.LateTTFR95MS, on.ColdTTFR95MS)
		}
		if f >= 0.5 && on.FragmentReuse <= 0 {
			t.Errorf("overlap %.2f: no fragment reuse recorded", f)
		}
		if on.CacheHitRatio <= 0 {
			t.Errorf("overlap %.2f: no cache hits recorded", f)
		}
		// Without sharing, a late joiner waits out an epoch like everyone
		// else — the cache is what cuts it, not the workload.
		if off.LateTTFR95MS*5 <= off.ColdTTFR95MS {
			t.Errorf("overlap %.2f: baseline late ttfr95 %.0fms already 5x below cold %.0fms — study not discriminating",
				f, off.LateTTFR95MS, off.ColdTTFR95MS)
		}
	}
}

// TestShareStudyDeterministic reruns the sweep and asserts identical rows:
// the study reports virtual-time quantities only.
func TestShareStudyDeterministic(t *testing.T) {
	a := runShareSweep(t)
	b := runShareSweep(t)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs between runs:\n first:  %+v\n second: %+v", i, a[i], b[i])
		}
	}
}

// TestShareStudyDefaults covers the default sweep shape.
func TestShareStudyDefaults(t *testing.T) {
	var cfg ShareStudyConfig
	cfg.setDefaults()
	if len(cfg.Overlaps) != 4 || cfg.Overlaps[3] != 0.75 {
		t.Fatalf("default overlap sweep = %v", cfg.Overlaps)
	}
	if cfg.Side != 7 || cfg.Cell != 8 || cfg.Queries != 12 || cfg.Late != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Quantum != 1024*time.Millisecond || cfg.EpochMS != 8192 {
		t.Fatalf("default timing = %+v", cfg)
	}
}
