// Package experiments reproduces every figure of the paper's evaluation
// (§4): the Figure 2 worked example, Figure 3's per-workload transmission
// times, Figure 4's benefit-ratio studies, and Figure 5's selectivity
// sweeps. Each runner returns structured rows that cmd/ttmqo-bench prints
// and the root benchmarks execute.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/field"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fig2Source gives the Figure 2 nodes readings that realize the example's
// two query sets: q_i = {D,E,F,G,H} (light ≥ 400) and q_j = {D,G,H}
// (light ≥ 800). Values are constant in time so the example is exact.
type fig2Source struct{}

func (fig2Source) Reading(id topology.NodeID, a field.Attr, _ sim.Time) float64 {
	if a == field.AttrNodeID {
		return float64(id)
	}
	if a != field.AttrLight {
		return 0
	}
	switch id {
	case topology.Fig2D:
		return 850
	case topology.Fig2E:
		return 500
	case topology.Fig2F:
		return 520
	case topology.Fig2G:
		return 870
	case topology.Fig2H:
		return 860
	default:
		return 100 // base station, A, B, C
	}
}

// Fig2Row is one mode of the worked example.
type Fig2Row struct {
	Mode string // "tinydb" or "dag"
	// Acquisition variant: result messages and involved (transmitting)
	// nodes for the two acquisition queries.
	AcqMessages int
	AcqNodes    int
	// Aggregation variant: result messages for the two MAX queries.
	AggMessages int
	// Paper's expectations.
	WantAcqMessages int
	WantAcqNodes    int
	WantAggMessages int
}

// RunFigure2Example reproduces the §3.2.2 worked example on the Figure 2
// topology: two acquisition queries (20 messages over 8 nodes under TinyDB
// versus 12 over 6 under the query-aware DAG) and two aggregation queries
// (14 versus 7 messages). One epoch is simulated with collisions and
// maintenance disabled so counts are exact.
func RunFigure2Example() ([]Fig2Row, error) {
	run := func(scheme network.Scheme, agg bool) (msgs, nodes int, err error) {
		topo, err := topology.Figure2()
		if err != nil {
			return 0, 0, err
		}
		s, err := network.New(network.Config{
			Topo:                topo,
			Scheme:              scheme,
			Seed:                1,
			Source:              fig2Source{},
			MaintenanceInterval: -1,
		})
		if err != nil {
			return 0, 0, err
		}
		var q1, q2 query.Query
		if agg {
			q1 = query.MustParse("SELECT MAX(light) WHERE light >= 400 EPOCH DURATION 4096")
			q2 = query.MustParse("SELECT MAX(light) WHERE light >= 800 EPOCH DURATION 4096")
		} else {
			q1 = query.MustParse("SELECT nodeid, light WHERE light >= 400 EPOCH DURATION 4096")
			q2 = query.MustParse("SELECT nodeid, light WHERE light >= 800 EPOCH DURATION 4096")
		}
		q1.ID, q2.ID = 1, 2
		s.PostAt(0, q1)
		s.PostAt(0, q2)
		// One epoch: queries fire at 4096ms; stop before the second firing.
		s.Run(8 * time.Second)
		return s.Metrics().MessagesOf("result"), s.Metrics().SendersOf("result"), nil
	}

	var rows []Fig2Row
	for _, mode := range []struct {
		name   string
		scheme network.Scheme
		acqMsg int
		acqN   int
		aggMsg int
	}{
		{"tinydb", network.Baseline, 20, 8, 14},
		{"dag", network.InNetworkOnly, 12, 6, 7},
	} {
		acqMsgs, acqNodes, err := run(mode.scheme, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 2 %s acquisition: %w", mode.name, err)
		}
		aggMsgs, _, err := run(mode.scheme, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 2 %s aggregation: %w", mode.name, err)
		}
		rows = append(rows, Fig2Row{
			Mode:            mode.name,
			AcqMessages:     acqMsgs,
			AcqNodes:        acqNodes,
			AggMessages:     aggMsgs,
			WantAcqMessages: mode.acqMsg,
			WantAcqNodes:    mode.acqN,
			WantAggMessages: mode.aggMsg,
		})
	}
	return rows, nil
}
