package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/share"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ShareStudyConfig parametrizes the cross-query sharing study: a fixed
// subscriber population whose region queries are swept across overlap
// factors, each cell run twice — straight against the gateway (tier-1
// exact dedup only) and through the `internal/share` coordinator
// (fragment CSE + windowed result cache). The study reports injected
// tier-1 radio messages and cold vs late-subscriber time-to-first-result.
type ShareStudyConfig struct {
	Seed int64
	// Overlaps lists the swept overlap factors in [0,1] (default 0, 0.25,
	// 0.5, 0.75). The factor controls how much the subscriber regions
	// coincide: at 0 every query is a single grid cell (a fragment IS a
	// query, so the sharing layer can only tie the baseline), and rising
	// f widens regions over the same cell space so many distinct queries
	// collapse onto few shared fragments.
	Overlaps []float64
	// Side is the grid side (default 7 — 48 sensors).
	Side int
	// Cell is the fragment alignment grid (default share.DefaultCell).
	Cell int
	// Queries is the cold subscriber population (default 12); Late is the
	// late-joiner population re-subscribing the same queries after the
	// warm-up (default 8).
	Queries int
	Late    int
	// Quantum is virtual time per drain round (default 1024ms); EpochMS
	// the query epoch (default 8192) — the gap between them is what the
	// warm cache erases from late-subscriber TTFR.
	Quantum time.Duration
	EpochMS int64
	// WarmRounds runs between the last cold subscribe and the first late
	// one (default 24 — three epochs, enough to fill the result window);
	// Rounds measures after the late joiners (default 24).
	WarmRounds int
	Rounds     int
}

func (c *ShareStudyConfig) setDefaults() {
	if len(c.Overlaps) == 0 {
		c.Overlaps = []float64{0, 0.25, 0.5, 0.75}
	}
	if c.Side <= 0 {
		c.Side = 7
	}
	if c.Cell <= 0 {
		c.Cell = share.DefaultCell
	}
	if c.Queries <= 0 {
		c.Queries = 12
	}
	if c.Late <= 0 {
		c.Late = 8
	}
	if c.Quantum <= 0 {
		c.Quantum = 1024 * time.Millisecond
	}
	if c.EpochMS <= 0 {
		c.EpochMS = 8192
	}
	if c.WarmRounds <= 0 {
		c.WarmRounds = 24
	}
	if c.Rounds <= 0 {
		c.Rounds = 24
	}
}

// ShareStudyRow is one (overlap, sharing) cell. Everything here is a
// deterministic function of configuration and seed — virtual time only.
type ShareStudyRow struct {
	Overlap float64 `json:"overlap"`
	Sharing bool    `json:"sharing"`
	Queries int     `json:"queries"`
	// Upstream is the number of distinct queries admitted into the
	// network: exact-dedup survivors without sharing, fragments with.
	Upstream int64 `json:"upstream"`
	// Messages is the injected tier-1 radio message total for the run.
	Messages int64 `json:"messages"`
	// ColdTTFR*: virtual ms from subscribe to first result for the cold
	// population. LateTTFR*: same for the late joiners — with sharing on,
	// the windowed cache replays immediately instead of waiting out an
	// epoch.
	ColdTTFR50MS float64 `json:"cold_ttfr50_ms"`
	ColdTTFR95MS float64 `json:"cold_ttfr95_ms"`
	LateTTFR50MS float64 `json:"late_ttfr50_ms"`
	LateTTFR95MS float64 `json:"late_ttfr95_ms"`
	// FragmentReuse and CacheHitRatio are zero without sharing.
	FragmentReuse float64 `json:"fragment_reuse_ratio"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Updates       int64   `json:"updates"`
}

// RunShareStudy sweeps overlap factors × sharing on/off.
func RunShareStudy(cfg ShareStudyConfig) ([]ShareStudyRow, error) {
	cfg.setDefaults()
	rows := make([]ShareStudyRow, 0, 2*len(cfg.Overlaps))
	for _, f := range cfg.Overlaps {
		for _, sharing := range []bool{false, true} {
			row, err := runShareCell(cfg, f, sharing)
			if err != nil {
				return nil, fmt.Errorf("share study, overlap %.2f sharing %v: %w", f, sharing, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// shareSub abstracts a pending-then-live subscription so one driver
// serves both the raw gateway and the coordinator.
type shareSub struct {
	wait    func() error
	updates func() <-chan gateway.Update
	subAt   sim.Time
	firstAt sim.Time
	seen    bool
}

func runShareCell(cfg ShareStudyConfig, overlap float64, sharing bool) (ShareStudyRow, error) {
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return ShareStudyRow{}, err
	}
	gw, err := gateway.New(gateway.Config{
		Sim: network.Config{Topo: topo, Scheme: network.TTMQO, Seed: cfg.Seed},
	})
	if err != nil {
		return ShareStudyRow{}, err
	}
	defer gw.Close()

	sensors := cfg.Side*cfg.Side - 1
	var coord *share.Coordinator
	if sharing {
		coord, err = share.New(share.Config{
			Upstream: share.OverGateway(gw),
			Sensors:  sensors,
			Cell:     cfg.Cell,
		})
		if err != nil {
			return ShareStudyRow{}, err
		}
		defer coord.Close()
	}
	advance := func(d time.Duration) error {
		if coord != nil {
			_, err := coord.Advance(d)
			return err
		}
		_, err := gw.Advance(d)
		return err
	}
	now := func() (sim.Time, error) {
		if coord != nil {
			return coord.Now()
		}
		return gw.Now()
	}

	// The subscriber population: cell-aligned regions whose width grows
	// with the overlap factor. The same list serves both modes, and late
	// joiner j re-issues query j's text verbatim.
	texts := shareQuerySet(cfg, overlap, sensors)
	subscribe := func(name string, i int) (*shareSub, error) {
		q := query.MustParse(texts[i%len(texts)])
		at, err := now()
		if err != nil {
			return nil, err
		}
		s := &shareSub{subAt: at}
		if coord != nil {
			sess, err := coord.Register(name)
			if err != nil {
				return nil, err
			}
			tk, err := sess.SubscribeAsync(q)
			if err != nil {
				return nil, err
			}
			s.wait = func() error {
				sub, err := tk.Wait()
				if err != nil {
					return err
				}
				s.updates = sub.Updates
				return nil
			}
			return s, nil
		}
		sess, err := gw.Register(name)
		if err != nil {
			return nil, err
		}
		tk, err := sess.SubscribeAsync(q)
		if err != nil {
			return nil, err
		}
		s.wait = func() error {
			sub, err := tk.Wait()
			if err != nil {
				return err
			}
			s.updates = sub.Updates
			return nil
		}
		return s, nil
	}

	var subs []*shareSub
	var updates int64
	drain := func() error {
		at, err := now()
		if err != nil {
			return err
		}
		for _, s := range subs {
			if s.updates == nil {
				if err := s.wait(); err != nil {
					return err
				}
			}
			for {
				select {
				case _, ok := <-s.updates():
					if !ok {
						return fmt.Errorf("subscription closed mid-study")
					}
					updates++
					if !s.seen {
						s.seen = true
						s.firstAt = at
					}
					continue
				default:
				}
				break
			}
		}
		return nil
	}
	step := func() error {
		if err := advance(cfg.Quantum); err != nil {
			return err
		}
		return drain()
	}

	// Cold population, staggered one per round so TTFR samples cover the
	// epoch phase space.
	cold := make([]*shareSub, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		s, err := subscribe(fmt.Sprintf("cold-%d", i), i)
		if err != nil {
			return ShareStudyRow{}, err
		}
		cold = append(cold, s)
		subs = append(subs, s)
		if err := step(); err != nil {
			return ShareStudyRow{}, err
		}
	}
	for r := 0; r < cfg.WarmRounds; r++ {
		if err := step(); err != nil {
			return ShareStudyRow{}, err
		}
	}

	// Late joiners re-subscribe the cold queries, also staggered.
	late := make([]*shareSub, 0, cfg.Late)
	for i := 0; i < cfg.Late; i++ {
		s, err := subscribe(fmt.Sprintf("late-%d", i), i%cfg.Queries)
		if err != nil {
			return ShareStudyRow{}, err
		}
		late = append(late, s)
		subs = append(subs, s)
		if err := step(); err != nil {
			return ShareStudyRow{}, err
		}
	}
	for r := 0; r < cfg.Rounds; r++ {
		if err := step(); err != nil {
			return ShareStudyRow{}, err
		}
	}

	exp, err := gw.Export()
	if err != nil {
		return ShareStudyRow{}, err
	}
	gst, err := gw.Stats()
	if err != nil {
		return ShareStudyRow{}, err
	}
	row := ShareStudyRow{
		Overlap:  overlap,
		Sharing:  sharing,
		Queries:  cfg.Queries + cfg.Late,
		Upstream: gst.Admitted,
		Messages: int64(exp.Metrics.Messages),
		Updates:  updates,
	}
	row.ColdTTFR50MS, row.ColdTTFR95MS = ttfrPercentiles(cold)
	row.LateTTFR50MS, row.LateTTFR95MS = ttfrPercentiles(late)
	if coord != nil {
		st := coord.ShareStats()
		row.FragmentReuse = st.FragmentReuseRatio()
		row.CacheHitRatio = st.CacheHitRatio()
	}
	return row, nil
}

// shareQuerySet builds the cell-aligned subscriber regions for one
// overlap factor. Every query spans whole cells, so the decomposition is
// residual-free and the comparison isolates cross-query sharing: at f=0
// each query is one cell (fragments and queries coincide), while rising f
// draws wider multi-cell regions over the same space — many distinct
// query forms whose cells coincide, which exact dedup cannot collapse but
// fragment CSE can.
func shareQuerySet(cfg ShareStudyConfig, overlap float64, sensors int) []string {
	cells := sensors / cfg.Cell
	maxW := 1 + int(math.Round(overlap*3))
	if maxW > cells {
		maxW = cells
	}
	rng := sim.NewRand(cfg.Seed).Fork(int64(math.Round(overlap * 100)))
	texts := make([]string, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		w := 1 + rng.Intn(maxW)
		s := rng.Intn(cells - w + 1)
		lo, hi := 1+s*cfg.Cell, (s+w)*cfg.Cell
		texts = append(texts, fmt.Sprintf(
			"SELECT SUM(light), AVG(light) WHERE nodeid >= %d AND nodeid <= %d EPOCH DURATION %d",
			lo, hi, cfg.EpochMS))
	}
	return texts
}

// ttfrPercentiles summarizes subscribe→first-result gaps in virtual ms.
func ttfrPercentiles(subs []*shareSub) (p50, p95 float64) {
	var ms []float64
	for _, s := range subs {
		if s.seen {
			ms = append(ms, float64((s.firstAt-s.subAt)/time.Millisecond))
		}
	}
	if len(ms) == 0 {
		return 0, 0
	}
	sort.Float64s(ms)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		return ms[i]
	}
	return pick(0.50), pick(0.95)
}

// ShareStudyString renders the study as a text table, pairing each
// overlap factor's off/on cells.
func ShareStudyString(rows []ShareStudyRow) string {
	out := fmt.Sprintf("%7s %7s %8s %9s %11s %11s %11s %11s %7s %7s\n",
		"overlap", "sharing", "upstream", "messages",
		"cold50(ms)", "cold95(ms)", "late50(ms)", "late95(ms)", "reuse", "cachehit")
	for _, r := range rows {
		mode := "off"
		if r.Sharing {
			mode = "on"
		}
		out += fmt.Sprintf("%7.2f %7s %8d %9d %11.0f %11.0f %11.0f %11.0f %7.2f %7.2f\n",
			r.Overlap, mode, r.Upstream, r.Messages,
			r.ColdTTFR50MS, r.ColdTTFR95MS, r.LateTTFR50MS, r.LateTTFR95MS,
			r.FragmentReuse, r.CacheHitRatio)
	}
	return out
}
