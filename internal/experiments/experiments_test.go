package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/network"
)

// Shape tests run shortened versions of each experiment and assert the
// qualitative findings of the paper's evaluation, not absolute numbers.

func fig3Rows(t *testing.T) []Fig3Row {
	t.Helper()
	rows, err := RunFigure3(Fig3Config{Seed: 1, Duration: 3 * time.Minute, Sides: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func rowFor(rows []Fig3Row, w string, scheme network.Scheme) Fig3Row {
	for _, r := range rows {
		if r.Workload == w && r.Scheme == scheme {
			return r
		}
	}
	return Fig3Row{}
}

func TestFigure3Shapes(t *testing.T) {
	rows := fig3Rows(t)
	for _, w := range []string{"A", "B", "C"} {
		base := rowFor(rows, w, network.Baseline)
		bs := rowFor(rows, w, network.BSOnly)
		in := rowFor(rows, w, network.InNetworkOnly)
		full := rowFor(rows, w, network.TTMQO)
		if base.AvgTxPct <= 0 {
			t.Fatalf("%s: baseline has no traffic", w)
		}
		// TTMQO strictly beats the baseline everywhere.
		if full.AvgTxPct >= base.AvgTxPct {
			t.Errorf("%s: TTMQO %.4f >= baseline %.4f", w, full.AvgTxPct, base.AvgTxPct)
		}
		// TTMQO at least matches the better single tier (mutual
		// complementarity, §4.2).
		if full.AvgTxPct > bs.AvgTxPct+1e-9 || full.AvgTxPct > in.AvgTxPct+1e-9 {
			t.Errorf("%s: TTMQO %.4f worse than a single tier (bs %.4f, in %.4f)",
				w, full.AvgTxPct, bs.AvgTxPct, in.AvgTxPct)
		}
	}

	// WORKLOAD_A: both tiers capture the common savings (each ≥ 40%).
	a := rowFor(fig3Rows(t), "A", network.BSOnly)
	if a.SavingsPct < 40 {
		t.Errorf("A: base-station savings %.1f%% too low", a.SavingsPct)
	}
	in := rowFor(rows, "A", network.InNetworkOnly)
	if in.SavingsPct < 40 {
		t.Errorf("A: in-network savings %.1f%% too low", in.SavingsPct)
	}

	// WORKLOAD_B: tier 1 is nearly powerless, tier 2 clearly helps.
	bBS := rowFor(rows, "B", network.BSOnly)
	bIN := rowFor(rows, "B", network.InNetworkOnly)
	if bBS.SavingsPct > 10 {
		t.Errorf("B: base-station should save little, got %.1f%%", bBS.SavingsPct)
	}
	if bIN.SavingsPct < bBS.SavingsPct+5 {
		t.Errorf("B: in-network (%.1f%%) must clearly beat base-station (%.1f%%)",
			bIN.SavingsPct, bBS.SavingsPct)
	}

	// WORKLOAD_C: the full scheme beats either tier alone.
	cBS := rowFor(rows, "C", network.BSOnly)
	cIN := rowFor(rows, "C", network.InNetworkOnly)
	cFull := rowFor(rows, "C", network.TTMQO)
	if cFull.SavingsPct < cBS.SavingsPct || cFull.SavingsPct < cIN.SavingsPct {
		t.Errorf("C: TTMQO %.1f%% must beat both tiers (%.1f%%, %.1f%%)",
			cFull.SavingsPct, cBS.SavingsPct, cIN.SavingsPct)
	}
}

func TestFigure3GrowingInNetworkAdvantage(t *testing.T) {
	// §4.2: in-network optimization's edge over the baseline grows with
	// network size under WORKLOAD_B.
	rows, err := RunFigure3(Fig3Config{Seed: 1, Duration: 3 * time.Minute,
		Sides: []int{4, 8}, Workloads: []string{"B"}})
	if err != nil {
		t.Fatal(err)
	}
	var small, large Fig3Row
	for _, r := range rows {
		if r.Scheme == network.InNetworkOnly {
			if r.Nodes == 16 {
				small = r
			} else {
				large = r
			}
		}
	}
	if large.SavingsPct <= small.SavingsPct {
		t.Errorf("in-network savings should grow with size: %.1f%% (16) vs %.1f%% (64)",
			small.SavingsPct, large.SavingsPct)
	}
}

func TestFigure4AShape(t *testing.T) {
	pts, err := RunFigure4A(Fig4Config{Seed: 1, NumQueries: 300, Runs: 1,
		Concurrencies: []int{8, 24, 48}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Rising benefit ratio: ≈32% at 8 queries, ≈82% at 48 in the paper.
	if pts[0].BenefitRatio < 0.15 || pts[0].BenefitRatio > 0.55 {
		t.Errorf("benefit ratio at 8 = %.2f, expected near the paper's 0.32", pts[0].BenefitRatio)
	}
	if pts[2].BenefitRatio < 0.65 {
		t.Errorf("benefit ratio at 48 = %.2f, expected near the paper's 0.82", pts[2].BenefitRatio)
	}
	if pts[2].BenefitRatio-pts[0].BenefitRatio < 0.25 {
		t.Errorf("ratio must rise strongly with concurrency: %.2f -> %.2f",
			pts[0].BenefitRatio, pts[2].BenefitRatio)
	}
	// The measured concurrency should track the target.
	for _, p := range pts {
		if p.AvgConcurrent < 0.5*float64(p.Concurrency) {
			t.Errorf("measured concurrency %.1f far below target %d", p.AvgConcurrent, p.Concurrency)
		}
	}
}

func TestFigure4BShape(t *testing.T) {
	pts, err := RunFigure4B(Fig4Config{Seed: 1, NumQueries: 300, Runs: 2,
		Alphas: []float64{0.0001, 0.6, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	// The α effect is small (the paper: "the parameter α has less effect");
	// assert the trade-off's direction at the low end — rewriting on every
	// termination (α→0) wastes flooding and loses good synthetic queries.
	if pts[1].BenefitRatio < pts[0].BenefitRatio-0.02 {
		t.Errorf("α=0.6 (%.3f) should not be clearly worse than α→0 (%.3f)",
			pts[1].BenefitRatio, pts[0].BenefitRatio)
	}
	if pts[0].Reinjections <= pts[2].Reinjections {
		t.Errorf("α→0 must cause more reinjections than α=1: %d vs %d",
			pts[0].Reinjections, pts[2].Reinjections)
	}
}

func TestFigure4CShape(t *testing.T) {
	pts, err := RunFigure4C(Fig4Config{Seed: 1, NumQueries: 300, Runs: 1,
		Concurrencies: []int{8, 48}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// "The average number of synthetic queries is less than 4 even when
		// the number of concurrent queries reaches 48."
		if p.AvgSynthetic >= 5 {
			t.Errorf("avg synthetic queries = %.2f at concurrency %d (α=%.1f), want < 5",
				p.AvgSynthetic, p.Concurrency, p.Alpha)
		}
		if p.AvgSynthetic <= 0 {
			t.Errorf("avg synthetic queries must be positive")
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := RunFigure5(Fig5Config{Seed: 1, Duration: 3 * time.Minute, Runs: 1,
		Selectivities: []float64{0.2, 0.6, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[float64][]Fig5Row)
	for _, r := range rows {
		series[r.AggFraction] = append(series[r.AggFraction], r)
	}
	for frac, s := range series {
		if len(s) != 3 {
			t.Fatalf("series %.1f has %d points", frac, len(s))
		}
		// Savings grow with selectivity for every mix.
		if !(s[0].SavingsPct < s[1].SavingsPct && s[1].SavingsPct < s[2].SavingsPct) {
			t.Errorf("mix %.1f: savings not increasing: %.1f, %.1f, %.1f",
				frac, s[0].SavingsPct, s[1].SavingsPct, s[2].SavingsPct)
		}
	}
	// 100% acquisition at selectivity 1: ≥ 7/8 (the paper measures 89.7%,
	// above the theoretical 87.5% thanks to fewer retransmissions).
	acq := series[0][2]
	if acq.SavingsPct < 80 {
		t.Errorf("acquisition savings at sel=1 = %.1f%%, want ≥ 80%%", acq.SavingsPct)
	}
	// 100% aggregation jumps at selectivity 1 (predicates become identical
	// and tier 1 can merge).
	agg := series[1]
	if agg[2].SavingsPct <= agg[1].SavingsPct {
		t.Errorf("aggregation series must jump at sel=1: %.1f -> %.1f",
			agg[1].SavingsPct, agg[2].SavingsPct)
	}
}

func TestFigStringRenderers(t *testing.T) {
	f3 := Fig3String([]Fig3Row{{Workload: "A", Nodes: 16, Scheme: network.TTMQO, AvgTxPct: 0.5}})
	if !strings.Contains(f3, "ttmqo") {
		t.Errorf("Fig3String: %q", f3)
	}
	f4 := Fig4String([]Fig4Point{{Concurrency: 8, Alpha: 0.6, BenefitRatio: 0.5}})
	if !strings.Contains(f4, "0.60") {
		t.Errorf("Fig4String: %q", f4)
	}
	f5 := Fig5String([]Fig5Row{{AggFraction: 1, Selectivity: 0.6, SavingsPct: 50}})
	if !strings.Contains(f5, "50.0") {
		t.Errorf("Fig5String: %q", f5)
	}
}

func TestRunAllReport(t *testing.T) {
	r, err := RunAll(ReportConfig{Seed: 1, Duration: 2 * time.Minute, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	md := r.Markdown()
	for _, want := range []string{
		"# TTMQO evaluation report",
		"## Figure 2", "## Figure 3", "## Figure 4(a)", "## Figure 5",
		"ablation", "Reliability", "lifetime",
		"## Federation scaling with shard count",
		"| tinydb | 20 (paper: 20)",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(r.Fig3) != 24 || len(r.Fig5) != 15 {
		t.Fatalf("row counts: fig3=%d fig5=%d", len(r.Fig3), len(r.Fig5))
	}
}
