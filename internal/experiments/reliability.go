package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/topology"
)

// ReliabilityConfig parametrizes the failure study — the paper's stated
// future work ("node failures and unreliable wireless transmissions ...
// quality-of-service driven multi-query optimization", §5), built as an
// extension: node outages are injected and the user-visible result
// completeness of the baseline and TTMQO is measured against ground truth
// recomputed from the deterministic field.
type ReliabilityConfig struct {
	Seed int64
	// Side of the grid (default 6 — 36 nodes).
	Side int
	// Duration per run (default 10 minutes).
	Duration time.Duration
	// MTBFs lists the mean-time-between-failures points of the sweep; zero
	// entries mean "no failures" (default ∞, 5m, 2m, 1m).
	MTBFs []time.Duration
	// MTTR is the mean outage duration (default 30 s).
	MTTR time.Duration
	// Parallelism caps the worker pool running independent cells (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *ReliabilityConfig) setDefaults() {
	if c.Side == 0 {
		c.Side = 6
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if len(c.MTBFs) == 0 {
		c.MTBFs = []time.Duration{0, 5 * time.Minute, 2 * time.Minute, time.Minute}
	}
	if c.MTTR == 0 {
		c.MTTR = 30 * time.Second
	}
}

// ReliabilityRow is one (scheme, MTBF) cell of the study.
type ReliabilityRow struct {
	Scheme network.Scheme
	// MTBF of the injected failures (0 = none).
	MTBF time.Duration
	// Completeness is delivered rows / ideally expected rows (all nodes
	// alive), in [0, 1].
	Completeness float64
	// Failures is the number of node outages that occurred.
	Failures int
	// AvgTxPct is the radio metric, for cost context.
	AvgTxPct float64
}

// RunReliability sweeps failure rates for the baseline and TTMQO, measuring
// acquisition-result completeness against the deterministic field's ground
// truth. Expected shape: completeness degrades gracefully with failure
// rate; the optimized scheme is not more fragile than the baseline even
// though each shared message now carries several queries' data.
func RunReliability(cfg ReliabilityConfig) ([]ReliabilityRow, error) {
	cfg.setDefaults()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	// Two overlapping acquisition queries; TTMQO merges them.
	mkQueries := func() []query.Query {
		q1 := query.MustParse("SELECT nodeid, light WHERE light >= 100 AND light <= 900 EPOCH DURATION 4096")
		q1.ID = 1
		q2 := query.MustParse("SELECT nodeid, light WHERE light >= 150 AND light <= 850 EPOCH DURATION 8192")
		q2.ID = 2
		return []query.Query{q1, q2}
	}

	type cell struct {
		scheme network.Scheme
		mtbf   time.Duration
	}
	var cells []cell
	for _, scheme := range []network.Scheme{network.Baseline, network.TTMQO} {
		for _, mtbf := range cfg.MTBFs {
			cells = append(cells, cell{scheme, mtbf})
		}
	}
	return sweep(cfg.Parallelism, cfg.Timing, cells, func(c cell) (ReliabilityRow, error) {
		scheme, mtbf := c.scheme, c.mtbf
		src := field.New(topo, field.Config{Seed: cfg.Seed})
		s, err := network.New(network.Config{
			Topo:   topo,
			Scheme: scheme,
			Seed:   cfg.Seed,
			Source: src,
			Radio:  radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
			Failures: network.FailureConfig{
				MTBF: mtbf,
				MTTR: cfg.MTTR,
			},
		})
		if err != nil {
			return ReliabilityRow{}, err
		}
		queries := mkQueries()
		for _, q := range queries {
			s.PostAt(0, q)
		}

		// Tally delivered vs expected rows per delivered epoch; the
		// deterministic field gives the all-nodes-alive ground truth.
		var delivered, expected int
		s.Results().OnRows = func(ur core.UserRows) {
			var uq query.Query
			for _, q := range queries {
				if q.ID == ur.QueryID {
					uq = q
				}
			}
			delivered += len(ur.Rows)
			for i := 1; i < topo.Size(); i++ {
				vals := map[field.Attr]float64{
					field.AttrLight: src.Reading(topology.NodeID(i), field.AttrLight, ur.Time),
				}
				if uq.MatchesRow(vals) {
					expected++
				}
			}
		}
		s.Run(cfg.Duration)

		comp := 1.0
		if expected > 0 {
			comp = float64(delivered) / float64(expected)
		}
		return ReliabilityRow{
			Scheme:       scheme,
			MTBF:         mtbf,
			Completeness: comp,
			Failures:     s.Failures(),
			AvgTxPct:     s.AvgTransmissionTime() * 100,
		}, nil
	})
}

// ReliabilityString renders the study as a text table.
func ReliabilityString(rows []ReliabilityRow) string {
	out := fmt.Sprintf("%-13s %8s %14s %9s %10s\n", "scheme", "mtbf", "completeness", "failures", "avgTx(%)")
	for _, r := range rows {
		mtbf := "none"
		if r.MTBF > 0 {
			mtbf = r.MTBF.String()
		}
		out += fmt.Sprintf("%-13s %8s %13.1f%% %9d %10.4f\n",
			r.Scheme, mtbf, r.Completeness*100, r.Failures, r.AvgTxPct)
	}
	return out
}
