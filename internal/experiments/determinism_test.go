package experiments

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// The parallel runner must never change results: every figure run serially
// (Parallelism 1) and fanned out (Parallelism 8) must produce identical
// rows — same seeds, same bytes. Each study below runs a shortened sweep
// twice and diffs the row slices.

func assertIdentical[T any](t *testing.T, study string, run func(parallelism int) ([]T, error)) {
	t.Helper()
	serial, err := run(1)
	if err != nil {
		t.Fatalf("%s serial: %v", study, err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("%s parallel: %v", study, err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%s: row counts differ: %d vs %d", study, len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s row %d differs:\n serial:   %+v\n parallel: %+v",
				study, i, serial[i], parallel[i])
		}
	}
	// Byte-level check on the rendered rows, the form reports publish.
	if s, p := fmt.Sprintf("%+v", serial), fmt.Sprintf("%+v", parallel); s != p {
		t.Errorf("%s: rendered rows differ", study)
	}
}

func TestFigure3Deterministic(t *testing.T) {
	assertIdentical(t, "figure 3", func(par int) ([]Fig3Row, error) {
		return RunFigure3(Fig3Config{
			Seed: 1, Duration: 2 * time.Minute, Sides: []int{4}, Parallelism: par,
		})
	})
}

func TestFigure4Deterministic(t *testing.T) {
	assertIdentical(t, "figure 4a", func(par int) ([]Fig4Point, error) {
		return RunFigure4A(Fig4Config{
			Seed: 1, NumQueries: 60, Concurrencies: []int{8, 16}, Runs: 2, Parallelism: par,
		})
	})
	assertIdentical(t, "figure 4b", func(par int) ([]Fig4Point, error) {
		return RunFigure4B(Fig4Config{
			Seed: 1, NumQueries: 60, Alphas: []float64{0.2, 0.8}, Runs: 2, Parallelism: par,
		})
	})
}

func TestFigure5Deterministic(t *testing.T) {
	assertIdentical(t, "figure 5", func(par int) ([]Fig5Row, error) {
		return RunFigure5(Fig5Config{
			Seed: 1, Duration: 2 * time.Minute, Selectivities: []float64{0.4, 0.8},
			AggFractions: []float64{0.5}, Runs: 2, Parallelism: par,
		})
	})
}

func TestAblationDeterministic(t *testing.T) {
	assertIdentical(t, "ablation", func(par int) ([]AblationRow, error) {
		return RunAblation(AblationConfig{
			Seed: 1, Side: 4, Duration: 2 * time.Minute, Parallelism: par,
		})
	})
}

func TestReliabilityDeterministic(t *testing.T) {
	assertIdentical(t, "reliability", func(par int) ([]ReliabilityRow, error) {
		return RunReliability(ReliabilityConfig{
			Seed: 1, Side: 4, Duration: 2 * time.Minute,
			MTBFs: []time.Duration{0, 2 * time.Minute}, Parallelism: par,
		})
	})
}

func TestLifetimeDeterministic(t *testing.T) {
	assertIdentical(t, "lifetime", func(par int) ([]LifetimeRow, error) {
		return RunLifetime(LifetimeConfig{
			Seed: 1, Side: 4, Duration: 2 * time.Minute, Parallelism: par,
		})
	})
}

func TestScalingDeterministic(t *testing.T) {
	assertIdentical(t, "scaling", func(par int) ([]ScalingRow, error) {
		return RunScaling(ScalingConfig{
			Seed: 1, Sides: []int{4, 6}, Duration: 2 * time.Minute, Parallelism: par,
		})
	})
}
