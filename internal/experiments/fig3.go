package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fig3Config parametrizes the Figure 3 study.
type Fig3Config struct {
	// Seed drives field, jitter and collisions.
	Seed int64
	// Duration is the simulated interval per run (default 10 minutes).
	Duration time.Duration
	// Sides lists grid side lengths (default {4, 8} — the paper's 16 and 64
	// node networks).
	Sides []int
	// Workloads lists the Figure 3 workload names (default A, B, C).
	Workloads []string
	// Parallelism caps the worker pool running independent cells (<= 0:
	// one worker per CPU). Results are identical at any setting.
	Parallelism int
	// Timing, when non-nil, receives the sweep's wall-clock accounting.
	Timing *runner.Timing
}

func (c *Fig3Config) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 10 * time.Minute
	}
	if len(c.Sides) == 0 {
		c.Sides = []int{4, 8}
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"A", "B", "C"}
	}
}

// Fig3Row is one bar of Figure 3.
type Fig3Row struct {
	Workload string
	Nodes    int
	Scheme   network.Scheme
	// AvgTxPct is the average transmission time as a percentage (the
	// figure's y axis).
	AvgTxPct float64
	// SavingsPct is the reduction relative to the baseline bar of the same
	// workload and network size.
	SavingsPct float64
	// Messages and Retransmissions give the underlying counts.
	Messages        int
	Retransmissions int
}

// RunFigure3 measures the average transmission time of each scheme under
// the three static workloads on 16- and 64-node grids (§4.2). Expected
// shape: for WORKLOAD_A both single tiers achieve similar large savings
// (the paper reports ≈61 % at 16 nodes and ≈75 % at 64); for WORKLOAD_B
// in-network optimization beats base-station optimization, and its margin
// grows with network size; for WORKLOAD_C the combined TTMQO beats either
// tier alone (up to ≈82 %).
func RunFigure3(cfg Fig3Config) ([]Fig3Row, error) {
	cfg.setDefaults()
	type cell struct {
		wname  string
		side   int
		scheme network.Scheme
	}
	var cells []cell
	for _, wname := range cfg.Workloads {
		if _, err := workload.ByName(wname); err != nil {
			return nil, err
		}
		for _, side := range cfg.Sides {
			for _, scheme := range network.AllSchemes() {
				cells = append(cells, cell{wname, side, scheme})
			}
		}
	}
	// Every cell is an independent simulation; run the grid across CPUs and
	// fill in savings against the baseline cell afterwards.
	rows, err := sweep(cfg.Parallelism, cfg.Timing, cells, func(c cell) (Fig3Row, error) {
		ws, err := workload.ByName(c.wname)
		if err != nil {
			return Fig3Row{}, err
		}
		topo, err := topology.PaperGrid(c.side)
		if err != nil {
			return Fig3Row{}, err
		}
		s, err := network.New(network.Config{
			Topo:           topo,
			Scheme:         c.scheme,
			Seed:           cfg.Seed,
			Radio:          radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
			DiscardResults: true,
		})
		if err != nil {
			return Fig3Row{}, err
		}
		for _, w := range ws {
			s.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				s.CancelAt(w.Depart, w.Query.ID)
			}
		}
		s.Run(cfg.Duration)
		return Fig3Row{
			Workload:        c.wname,
			Nodes:           topo.Size(),
			Scheme:          c.scheme,
			AvgTxPct:        s.AvgTransmissionTime() * 100,
			Messages:        s.Metrics().Messages(),
			Retransmissions: s.Metrics().Retransmissions(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	baseline := make(map[[2]any]float64, len(rows)/4)
	for _, r := range rows {
		if r.Scheme == network.Baseline {
			baseline[[2]any{r.Workload, r.Nodes}] = r.AvgTxPct
		}
	}
	for i := range rows {
		rows[i].SavingsPct = metrics.Savings(baseline[[2]any{rows[i].Workload, rows[i].Nodes}], rows[i].AvgTxPct) * 100
	}
	return rows, nil
}

// Fig3String renders rows as the text table cmd/ttmqo-bench prints.
func Fig3String(rows []Fig3Row) string {
	out := fmt.Sprintf("%-9s %6s %-13s %10s %9s %9s %8s\n",
		"workload", "nodes", "scheme", "avgTx(%)", "save(%)", "messages", "retrans")
	for _, r := range rows {
		out += fmt.Sprintf("%-9s %6d %-13s %10.4f %9.1f %9d %8d\n",
			r.Workload, r.Nodes, r.Scheme, r.AvgTxPct, r.SavingsPct, r.Messages, r.Retransmissions)
	}
	return out
}
