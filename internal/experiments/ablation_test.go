package experiments

import (
	"testing"
	"time"
)

func TestAblationShapes(t *testing.T) {
	rows, err := RunAblation(AblationConfig{Seed: 1, Side: 8, Duration: 4 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["full"]
	if full.AvgTxPct <= 0 {
		t.Fatal("full variant has no traffic")
	}
	// Removing epoch alignment or message packing must cost clearly more
	// traffic; removing the whole tier-2 stack the most.
	for _, name := range []string{"-alignment", "-packing", "tier1-only"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing variant %s", name)
		}
		if r.DeltaPct < 5 {
			t.Errorf("%s: expected ≥ +5%% traffic, got %+.1f%%", name, r.DeltaPct)
		}
	}
	// No single mechanism removal should *help* materially (within noise).
	for _, r := range rows {
		if r.Variant == "full" {
			continue
		}
		if r.DeltaPct < -3 {
			t.Errorf("%s: removing a mechanism should not save traffic: %+.1f%%", r.Variant, r.DeltaPct)
		}
	}
}

func TestAblationString(t *testing.T) {
	s := AblationString([]AblationRow{{Variant: "full", AvgTxPct: 0.5}})
	if s == "" {
		t.Fatal("empty render")
	}
}

func TestAblationUnknownWorkload(t *testing.T) {
	if _, err := RunAblation(AblationConfig{Workload: "Z"}); err == nil {
		t.Fatal("unknown workload must error")
	}
}
