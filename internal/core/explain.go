package core

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// Explanation describes how the base station serves one user query: which
// synthetic query runs in the network on its behalf, who it shares it with,
// and the mapping/calculation steps applied to the synthetic stream — the
// EXPLAIN of this query processor.
type Explanation struct {
	// UserQuery is the original query.
	UserQuery query.Query
	// Synthetic is the network query serving it.
	Synthetic query.Query
	// SharedWith lists the other user queries served by the same synthetic
	// query.
	SharedWith []query.ID
	// Steps are the base-station derivation steps, in order.
	Steps []string
	// EstSelectivity is the cost model's estimate of the fraction of nodes
	// answering the user query.
	EstSelectivity float64
	// UserCost and SyntheticShare estimate the query's standalone cost and
	// its pro-rata share of the synthetic query's cost (both in the §3.1.2
	// airtime-fraction unit).
	UserCost       float64
	SyntheticShare float64
	// GroupSavings is the benefit rate of the whole synthetic query:
	// 1 − cost(synthetic)/Σcost(contributors).
	GroupSavings float64
}

// Explain reports how user query qid is currently being served.
func (o *Optimizer) Explain(qid query.ID) (Explanation, error) {
	uq, ok := o.users[qid]
	if !ok {
		return Explanation{}, fmt.Errorf("core: unknown user query %d", qid)
	}
	s := o.syn[o.userSyn[qid]]

	e := Explanation{
		UserQuery:      uq.Clone(),
		Synthetic:      s.q.Clone(),
		EstSelectivity: o.model.Selectivity(uq.Preds),
		UserCost:       o.model.Cost(uq),
	}
	for id := range s.from {
		if id != qid {
			e.SharedWith = append(e.SharedWith, id)
		}
	}
	sortIDs(e.SharedWith)

	var total float64
	for _, f := range s.from {
		total += o.model.Cost(f)
	}
	synCost := o.model.Cost(s.q)
	if total > 0 {
		e.SyntheticShare = synCost * e.UserCost / total
		e.GroupSavings = 1 - synCost/total
	}

	e.Steps = derivationSteps(s.q, uq)
	return e, nil
}

// derivationSteps lists what the base station does to turn the synthetic
// stream into the user query's answers.
func derivationSteps(syn, uq query.Query) []string {
	var steps []string
	if uq.Epoch != syn.Epoch {
		steps = append(steps, fmt.Sprintf("decimate epochs: deliver every %v of the %v stream",
			uq.Epoch, syn.Epoch))
	}
	if syn.IsAggregation() {
		if len(uq.Aggs) < len(syn.Aggs) {
			steps = append(steps, fmt.Sprintf("project aggregates %s from the shared partials", aggList(uq.Aggs)))
		} else {
			steps = append(steps, "deliver the in-network aggregates as-is")
		}
		return steps
	}
	// Acquisition synthetic stream.
	var refilter []string
	for _, p := range uq.Preds {
		if sp, ok := syn.PredFor(p.Attr); ok && sp == p {
			continue // applied identically in-network
		}
		refilter = append(refilter, p.String())
	}
	if len(refilter) > 0 {
		steps = append(steps, "re-filter rows on "+strings.Join(refilter, " AND "))
	}
	if uq.IsAggregation() {
		if uq.GroupBy != nil {
			steps = append(steps, fmt.Sprintf("bucket rows by %s", uq.GroupBy))
		}
		steps = append(steps, fmt.Sprintf("compute %s from raw rows", aggList(uq.Aggs)))
		return steps
	}
	if len(uq.Attrs) < len(syn.Attrs) {
		steps = append(steps, fmt.Sprintf("project rows to %s", attrList(uq)))
	}
	if len(steps) == 0 {
		steps = append(steps, "deliver rows as-is")
	}
	return steps
}

func aggList(aggs []query.Agg) string {
	parts := make([]string, 0, len(aggs))
	for _, a := range aggs {
		parts = append(parts, a.String())
	}
	return strings.Join(parts, ", ")
}

func attrList(q query.Query) string {
	parts := make([]string, 0, len(q.Attrs))
	for _, a := range q.Attrs {
		parts = append(parts, a.String())
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func sortIDs(ids []query.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// String renders the explanation as a small report.
func (e Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query:     %s\n", e.UserQuery)
	fmt.Fprintf(&sb, "runs as:   syn %d: %s\n", e.Synthetic.ID, e.Synthetic)
	if len(e.SharedWith) > 0 {
		fmt.Fprintf(&sb, "shared:    with user queries %v (group saves %.0f%% of standalone cost)\n",
			e.SharedWith, e.GroupSavings*100)
	} else {
		sb.WriteString("shared:    runs alone\n")
	}
	for i, s := range e.Steps {
		if i == 0 {
			fmt.Fprintf(&sb, "mapping:   %s\n", s)
		} else {
			fmt.Fprintf(&sb, "           %s\n", s)
		}
	}
	fmt.Fprintf(&sb, "estimates: selectivity %.2f, standalone cost %.5f, share of synthetic cost %.5f",
		e.EstSelectivity, e.UserCost, e.SyntheticShare)
	return sb.String()
}
