package core

import (
	"sort"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
)

// UserRows is one epoch of acquisition results delivered to a user query
// after mapping.
type UserRows struct {
	QueryID query.ID
	Time    sim.Time
	Rows    []query.Row
}

// UserAgg is one epoch of aggregation results delivered to a user query
// after mapping.
type UserAgg struct {
	QueryID query.ID
	Time    sim.Time
	Results []query.AggResult
}

// MapAcquisition derives user results from one epoch of an acquisition
// synthetic query's stream ("corresponding results for user queries can be
// easily obtained through mapping and calculation", §1). For every user
// query in the synthetic query's from-list whose epoch fires at t (epochs
// are aligned to multiples of the duration, §3.2.1):
//
//   - an acquisition user query receives the rows re-filtered by its own
//     predicates and projected to its attribute list;
//   - an aggregation user query receives its aggregates computed over the
//     re-filtered rows.
//
// Predicates the synthetic query applies identically in-network are skipped
// during re-filtering (the rows arrive pre-filtered, and the attribute may
// not have been acquired).
func (o *Optimizer) MapAcquisition(synID query.ID, t sim.Time, rows []query.Row) (acq []UserRows, agg []UserAgg) {
	s, ok := o.syn[synID]
	if !ok {
		return nil, nil
	}
	for _, uq := range sortedQueries(s.from) {
		if !fires(uq, t) {
			continue
		}
		matched := filterRows(s.q, uq, rows)
		if uq.IsAggregation() {
			agg = append(agg, UserAgg{QueryID: uq.ID, Time: t, Results: AggregateRows(uq, t, matched)})
			continue
		}
		rowAttrs := uq.RowAttrs()
		projected := make([]query.Row, 0, len(matched))
		for _, r := range matched {
			vals := make(map[field.Attr]float64, len(rowAttrs))
			for _, a := range rowAttrs {
				if v, ok := r.Values[a]; ok {
					vals[a] = v
				}
			}
			projected = append(projected, query.Row{Node: r.Node, Time: r.Time, Values: vals})
		}
		acq = append(acq, UserRows{QueryID: uq.ID, Time: t, Rows: projected})
	}
	return acq, agg
}

// MapAggregation derives user results from one epoch of an aggregation
// synthetic query's stream. Every contributor shares the synthetic query's
// predicates (a §3.1.2 correctness constraint), so mapping is a projection
// of the requested aggregates.
func (o *Optimizer) MapAggregation(synID query.ID, t sim.Time, states []query.AggState) []UserAgg {
	s, ok := o.syn[synID]
	if !ok {
		return nil
	}
	var out []UserAgg
	for _, uq := range sortedQueries(s.from) {
		if !fires(uq, t) {
			continue
		}
		out = append(out, UserAgg{QueryID: uq.ID, Time: t, Results: AggregateStates(uq, t, states)})
	}
	return out
}

// AggregateStates projects a set of (possibly grouped) partial aggregate
// states onto one user query's result tuples. For ungrouped queries every
// requested aggregate yields exactly one tuple (Empty if no node matched);
// for GROUP BY queries each present bucket yields one tuple per aggregate,
// sorted by bucket.
func AggregateStates(uq query.Query, t sim.Time, states []query.AggState) []query.AggResult {
	results := make([]query.AggResult, 0, len(uq.Aggs))
	for _, a := range uq.Aggs {
		var matching []query.AggState
		for _, st := range states {
			if st.Agg == a {
				matching = append(matching, st)
			}
		}
		if uq.GroupBy == nil {
			if len(matching) == 0 {
				results = append(results, query.AggResult{Time: t, Agg: a, Empty: true})
				continue
			}
			v, okv := matching[0].Result()
			results = append(results, query.AggResult{Time: t, Agg: a, Value: v, Empty: !okv})
			continue
		}
		sort.Slice(matching, func(i, j int) bool { return matching[i].Group < matching[j].Group })
		for _, st := range matching {
			v, okv := st.Result()
			results = append(results, query.AggResult{Time: t, Agg: a, Group: st.Group, Value: v, Empty: !okv})
		}
	}
	return results
}

// AggregateRows computes a user query's (possibly grouped) aggregates from
// raw rows — the base-station "calculation" path when an aggregation query
// is served by an acquisition synthetic query.
func AggregateRows(uq query.Query, t sim.Time, rows []query.Row) []query.AggResult {
	var states []query.AggState
	for _, r := range rows {
		var group int64
		if uq.GroupBy != nil {
			gv, ok := r.Values[uq.GroupBy.Attr]
			if !ok {
				continue
			}
			group = uq.GroupBy.Key(gv)
		}
		for _, a := range uq.Aggs {
			v, ok := r.Values[a.Attr]
			if !ok {
				continue
			}
			st := query.NewGroupedAggState(a, group)
			st.Add(v)
			states = foldState(states, st)
		}
	}
	return AggregateStates(uq, t, states)
}

func foldState(states []query.AggState, st query.AggState) []query.AggState {
	for i := range states {
		if states[i].Agg == st.Agg && states[i].Group == st.Group {
			states[i].Merge(st)
			return states
		}
	}
	return append(states, st)
}

// fires reports whether a query with aligned epochs produces results at t
// (windowed queries report every Slide epochs).
func fires(q query.Query, t sim.Time) bool {
	re := q.ReportEvery()
	return re > 0 && t%sim.Time(re) == 0
}

// filterRows re-applies uq's predicates to the synthetic stream, skipping
// predicates syn already applies identically in-network.
func filterRows(syn, uq query.Query, rows []query.Row) []query.Row {
	var preds []query.Predicate
	for _, p := range uq.Preds {
		if sp, ok := syn.PredFor(p.Attr); ok && sp == p {
			continue
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return rows
	}
	filter := query.Query{Preds: preds}
	out := make([]query.Row, 0, len(rows))
	for _, r := range rows {
		if filter.MatchesRow(r.Values) {
			out = append(out, r)
		}
	}
	return out
}
