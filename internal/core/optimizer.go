package core

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/query"
)

// SyntheticIDBase offsets synthetic query IDs away from user query IDs so
// the two namespaces never collide in message headers or logs.
const SyntheticIDBase query.ID = 1 << 20

// Change describes the net effect of one optimizer operation on the sensor
// network: synthetic queries to inject and synthetic queries to abort. A
// synthetic query created and superseded within the same operation never
// appears — the base station screens such churn from the network (§3).
type Change struct {
	Inject []query.Query
	Abort  []query.ID
}

// Empty reports whether the operation requires no network traffic at all
// ("the query insertion and termination can be handled at the base station,
// without affecting the sensor network").
func (c Change) Empty() bool { return len(c.Inject) == 0 && len(c.Abort) == 0 }

// synthetic is one entry of the synthetic query table (§3.1.1). The paper's
// per-field count annotations are realized by keeping every contributor's
// original query in from and recomputing the canonical requirement with
// Synthesize; "some count decreased to 0" is then exactly "the canonical
// requirement shrank" (see DESIGN.md). The paper's flag field tracks
// in-flight injections; our injection is atomic within an operation, so the
// running set itself plays that role.
type synthetic struct {
	id query.ID
	q  query.Query
	// from maps each contributing user query ID to its original query (the
	// from_list).
	from map[query.ID]query.Query
	// benefit is Σ cost(user) − cost(q), the gain over running the
	// contributors individually (§3.1.1(d)).
	benefit float64
}

// Optimizer is the base-station (tier 1) optimizer: it maintains the set of
// running synthetic queries and rewrites user queries into them.
//
// Optimizer is not safe for concurrent use; the base station serializes
// query admission.
type Optimizer struct {
	model   *cost.Model
	alpha   float64
	syn     map[query.ID]*synthetic
	userSyn map[query.ID]query.ID    // user query ID → synthetic query ID
	users   map[query.ID]query.Query // user query ID → original query
	nextSyn query.ID
}

// Options configures an Optimizer.
type Options struct {
	// Alpha is the §3.1.4 termination-aggressiveness parameter: on a
	// termination that strands data requests, the old synthetic query is
	// kept iff cost(q) ≤ α·benefit. The paper's sweet spot is 0.6.
	Alpha float64
}

// DefaultAlpha is the α the paper finds best (Figure 4(b)).
const DefaultAlpha = 0.6

// NewOptimizer returns an optimizer that estimates costs with model.
func NewOptimizer(model *cost.Model, opts Options) *Optimizer {
	if opts.Alpha == 0 {
		opts.Alpha = DefaultAlpha
	}
	return &Optimizer{
		model:   model,
		alpha:   opts.Alpha,
		syn:     make(map[query.ID]*synthetic),
		userSyn: make(map[query.ID]query.ID),
		users:   make(map[query.ID]query.Query),
		nextSyn: SyntheticIDBase,
	}
}

// Alpha returns the configured termination parameter.
func (o *Optimizer) Alpha() float64 { return o.alpha }

// Model returns the cost model (shared so callers can feed observations).
func (o *Optimizer) Model() *cost.Model { return o.model }

// Insert admits a new user query (Algorithm 1) and returns the resulting
// network change. The query must carry a unique positive ID below
// SyntheticIDBase.
func (o *Optimizer) Insert(q query.Query) (Change, error) {
	if q.ID <= 0 || q.ID >= SyntheticIDBase {
		return Change{}, fmt.Errorf("core: user query ID %d out of range", q.ID)
	}
	if _, dup := o.users[q.ID]; dup {
		return Change{}, fmt.Errorf("core: duplicate user query ID %d", q.ID)
	}
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return Change{}, fmt.Errorf("core: %w", err)
	}
	before := o.runningIDs()
	o.users[q.ID] = q
	o.insert(map[query.ID]query.Query{q.ID: q}, q)
	return o.diff(before), nil
}

// InsertBatch admits several user queries as one operation, returning the
// *net* network change: synthetic queries created and superseded while the
// batch merges amongst itself never touch the network. Posting n similar
// queries one by one floods up to 2n−1 injections/abortions; a batch floods
// only the final synthetic set. On error, queries admitted before the
// failure stay admitted and the change reflects them.
func (o *Optimizer) InsertBatch(qs []query.Query) (Change, error) {
	before := o.runningIDs()
	for _, q := range qs {
		if q.ID <= 0 || q.ID >= SyntheticIDBase {
			return o.diff(before), fmt.Errorf("core: user query ID %d out of range", q.ID)
		}
		if _, dup := o.users[q.ID]; dup {
			return o.diff(before), fmt.Errorf("core: duplicate user query ID %d", q.ID)
		}
		q = q.Normalize()
		if err := q.Validate(); err != nil {
			return o.diff(before), fmt.Errorf("core: %w", err)
		}
		o.users[q.ID] = q
		o.insert(map[query.ID]query.Query{q.ID: q}, q)
	}
	return o.diff(before), nil
}

// Terminate removes a user query (Algorithm 2) and returns the resulting
// network change.
func (o *Optimizer) Terminate(qid query.ID) (Change, error) {
	uq, ok := o.users[qid]
	if !ok {
		return Change{}, fmt.Errorf("core: unknown user query ID %d", qid)
	}
	before := o.runningIDs()
	synID := o.userSyn[qid]
	s := o.syn[synID]
	oldBenefit := s.benefit

	delete(o.users, qid)
	delete(o.userSyn, qid)
	delete(s.from, qid)

	if len(s.from) == 0 {
		delete(o.syn, synID)
		return o.diff(before), nil
	}

	minimal := Synthesize(queriesOf(s.from))
	if minimal.Equal(s.q) {
		// No count dropped to 0: the remaining queries still require every
		// piece of data s requests. Nothing changes in the network.
		s.benefit = o.benefitOf(s)
		return o.diff(before), nil
	}

	// Some data is now requested by no one. Keep the old synthetic query —
	// hiding the termination from the network — iff the stranded volume is
	// small relative to the synthetic query's benefit: cost(q) ≤ α·benefit.
	if o.model.Cost(uq) <= o.alpha*oldBenefit {
		s.benefit = o.benefitOf(s)
		return o.diff(before), nil
	}

	// Otherwise re-insert the remaining user queries as if newly arrived
	// (Algorithm 2 lines 6–7).
	delete(o.syn, synID)
	for _, rq := range sortedQueries(s.from) {
		delete(o.userSyn, rq.ID)
		o.insert(map[query.ID]query.Query{rq.ID: rq}, rq)
	}
	return o.diff(before), nil
}

// insert implements the greedy loop of Algorithm 1, generalized to carry a
// from-set so that the "Integrate then Insert(q_id, Q_syn)" recursion (line
// 14) reuses the same path: the merged synthetic query re-enters insertion
// as the new query, bringing its contributors along.
func (o *Optimizer) insert(from map[query.ID]query.Query, q query.Query) {
	for {
		best, bestRate, covers := o.mostBeneficial(q)
		switch {
		case best != nil && covers:
			// q_id covers q_i: attach; the workload on the network does not
			// change (Algorithm 1 lines 11–12).
			for id, uq := range from {
				best.from[id] = uq
				o.userSyn[id] = best.id
			}
			best.benefit = o.benefitOf(best)
			return
		case best != nil && bestRate > 0:
			// Integrate(q_id, q_i), then re-insert the merged query against
			// the remaining synthetic queries (lines 13–14).
			delete(o.syn, best.id)
			for id, uq := range best.from {
				from[id] = uq
			}
			q = Synthesize(queriesOf(from))
			continue
		default:
			// No beneficial rewrite: run q as its own synthetic query
			// (lines 15–16, and lines 1–2 when the table is empty).
			o.addSynthetic(from, q)
			return
		}
	}
}

// mostBeneficial scans the synthetic query table for the entry with the
// highest benefit rate against q (Algorithm 1 lines 4–10), short-circuiting
// on a covering entry. Coverage is reported as a distinct flag rather than
// rate == 1, so a non-covering merge whose benefit happens to equal cost(q)
// cannot be mistaken for coverage.
func (o *Optimizer) mostBeneficial(q query.Query) (best *synthetic, bestRate float64, covers bool) {
	for _, s := range o.sortedSyn() {
		rate, cov := o.benefitRate(q, s)
		if cov {
			return s, 1, true
		}
		if rate > bestRate {
			best, bestRate = s, rate
		}
	}
	return best, bestRate, false
}

// benefitRate is the Beneficial(q_i, q_j) function: (1, true) when s covers
// q, 0 when the pair is not rewritable, otherwise benefit/cost(q) computed
// against the exact merged requirement.
func (o *Optimizer) benefitRate(q query.Query, s *synthetic) (float64, bool) {
	if query.Covers(s.q, q) {
		return 1, true
	}
	if !query.Rewritable(q, s.q) {
		return 0, false
	}
	cq := o.model.Cost(q)
	if cq <= 0 {
		return 0, false
	}
	mergedFrom := make([]query.Query, 0, len(s.from)+1)
	mergedFrom = append(mergedFrom, queriesOf(s.from)...)
	mergedFrom = append(mergedFrom, q)
	merged := Synthesize(mergedFrom)
	rate := (o.model.Cost(s.q) + cq - o.model.Cost(merged)) / cq
	if rate > 1 {
		rate = 1
	}
	return rate, false
}

func (o *Optimizer) addSynthetic(from map[query.ID]query.Query, q query.Query) {
	s := &synthetic{
		id:   o.nextSyn,
		q:    q,
		from: from,
	}
	s.q.ID = s.id
	o.nextSyn++
	o.syn[s.id] = s
	for id := range from {
		o.userSyn[id] = s.id
	}
	s.benefit = o.benefitOf(s)
}

// benefitOf returns Σ cost(contributors) − cost(synthetic).
func (o *Optimizer) benefitOf(s *synthetic) float64 {
	var sum float64
	for _, uq := range s.from {
		sum += o.model.Cost(uq)
	}
	return sum - o.model.Cost(s.q)
}

func (o *Optimizer) runningIDs() map[query.ID]bool {
	ids := make(map[query.ID]bool, len(o.syn))
	for id := range o.syn {
		ids[id] = true
	}
	return ids
}

func (o *Optimizer) diff(before map[query.ID]bool) Change {
	var ch Change
	for id := range before {
		if _, still := o.syn[id]; !still {
			ch.Abort = append(ch.Abort, id)
		}
	}
	for id, s := range o.syn {
		if !before[id] {
			ch.Inject = append(ch.Inject, s.q.Clone())
		}
	}
	sort.Slice(ch.Abort, func(i, j int) bool { return ch.Abort[i] < ch.Abort[j] })
	sort.Slice(ch.Inject, func(i, j int) bool { return ch.Inject[i].ID < ch.Inject[j].ID })
	return ch
}

func (o *Optimizer) sortedSyn() []*synthetic {
	out := make([]*synthetic, 0, len(o.syn))
	for _, s := range o.syn {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func queriesOf(m map[query.ID]query.Query) []query.Query {
	out := make([]query.Query, 0, len(m))
	for _, q := range sortedQueries(m) {
		out = append(out, q)
	}
	return out
}

func sortedQueries(m map[query.ID]query.Query) []query.Query {
	out := make([]query.Query, 0, len(m))
	for _, q := range m {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Introspection (used by the experiment harnesses and the shell) ---

// SyntheticQueries returns the running synthetic queries, sorted by ID.
func (o *Optimizer) SyntheticQueries() []query.Query {
	out := make([]query.Query, 0, len(o.syn))
	for _, s := range o.sortedSyn() {
		out = append(out, s.q.Clone())
	}
	return out
}

// SyntheticCount returns the number of running synthetic queries (the
// Figure 4(c) metric).
func (o *Optimizer) SyntheticCount() int { return len(o.syn) }

// UserCount returns the number of live user queries.
func (o *Optimizer) UserCount() int { return len(o.users) }

// UserQueries returns the live user queries, sorted by ID.
func (o *Optimizer) UserQueries() []query.Query {
	m := make(map[query.ID]query.Query, len(o.users))
	for id, q := range o.users {
		m[id] = q
	}
	return sortedQueries(m)
}

// SyntheticFor returns the synthetic query that serves user query qid.
func (o *Optimizer) SyntheticFor(qid query.ID) (query.Query, bool) {
	sid, ok := o.userSyn[qid]
	if !ok {
		return query.Query{}, false
	}
	return o.syn[sid].q.Clone(), true
}

// FromList returns the user query IDs served by synthetic query sid, sorted.
func (o *Optimizer) FromList(sid query.ID) []query.ID {
	s, ok := o.syn[sid]
	if !ok {
		return nil
	}
	ids := make([]query.ID, 0, len(s.from))
	for id := range s.from {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedIDs returns a map's query IDs in ascending order. The cost totals
// below sum in this fixed order: floating-point addition is not
// associative, so summing in map iteration order would make the totals
// differ in the last ulps from run to run and break the experiments'
// reproducibility guarantee.
func sortedIDs[V any](m map[query.ID]V) []query.ID {
	ids := make([]query.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TotalUserCost returns Σ cost(q) over live user queries — the denominator
// of the Figure 4 benefit ratio.
func (o *Optimizer) TotalUserCost() float64 {
	var sum float64
	for _, id := range sortedIDs(o.users) {
		sum += o.model.Cost(o.users[id])
	}
	return sum
}

// TotalSyntheticCost returns Σ cost(s) over running synthetic queries.
func (o *Optimizer) TotalSyntheticCost() float64 {
	var sum float64
	for _, id := range sortedIDs(o.syn) {
		sum += o.model.Cost(o.syn[id].q)
	}
	return sum
}

// TotalBenefit returns Σ benefit over running synthetic queries; by
// construction it equals TotalUserCost() − TotalSyntheticCost().
func (o *Optimizer) TotalBenefit() float64 {
	var sum float64
	for _, id := range sortedIDs(o.syn) {
		sum += o.syn[id].benefit
	}
	return sum
}
