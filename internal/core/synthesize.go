// Package core implements the paper's primary contribution: the two-tier
// multiple query optimizer. This file and optimizer.go implement tier 1, the
// base-station optimization of §3.1 — cost-guided rewriting of user queries
// into a smaller set of synthetic queries (Algorithm 1), adaptive handling
// of query termination (Algorithm 2), and the bookkeeping that lets the base
// station derive every user query's results from the synthetic streams
// (mapper.go).
package core

import (
	"sort"

	"repro/internal/field"
	"repro/internal/query"
)

// Synthesize returns the canonical synthetic query serving a set of user
// queries: the exact data requirement of the set, independent of the order
// in which the set was assembled.
//
// If every query is an aggregation query (they then share identical
// predicates, enforced by query.Rewritable), the result aggregates the union
// of their agg lists at the GCD of their epochs. Otherwise the result is an
// acquisition query whose projection is the union of all queries'
// projections and aggregate inputs, plus the predicate attributes needed for
// base-station re-filtering: attribute A is acquired for a query whose
// predicate on A differs from the merged predicate (identically filtered
// attributes arrive pre-filtered and need no raw value). The merged
// predicate list is the n-ary conjunctive-superset union and the epoch is
// the GCD.
//
// This is the associative/commutative closure of query.Integrate with the
// re-filter attributes computed exactly rather than pairwise-conservatively;
// the paper's count fields (§3.1.1) are realized by recomputing this
// canonical form from the surviving contributors (see DESIGN.md).
func Synthesize(qs []query.Query) query.Query {
	if len(qs) == 0 {
		return query.Query{}
	}
	allWin := true
	allAgg := true
	for _, q := range qs {
		if !q.IsAggregation() {
			allAgg = false
		}
		if !q.IsWindowed() {
			allWin = false
		}
	}
	// The pure-aggregation merge is only sound when every member shares one
	// predicate list and group spec. Pairwise Rewritable guarantees that for
	// sets assembled agg-with-agg — but a synthetic query can end up serving
	// only aggregation members through another route: an acquisition
	// synthetic whose acquisition members terminated while α kept it alive.
	// Recombining those members must NOT silently adopt the first member's
	// predicates; fall back to the acquisition form, which covers any mix.
	if allAgg {
		for _, q := range qs[1:] {
			if !query.PredsEqual(qs[0].Preds, q.Preds) || !qs[0].GroupBy.Equal(q.GroupBy) {
				allAgg = false
				break
			}
		}
	}
	if allWin {
		// Windowed queries only ever merge with compatible windowed queries
		// (query.Rewritable): identical predicates and epoch; the merged
		// query reports on the GCD slide schedule.
		merged := qs[0].Clone()
		merged.ID = 0
		for _, q := range qs[1:] {
			merged.Wins = append(merged.Wins, q.Wins...)
		}
		slide := merged.Wins[0].Slide
		for _, w := range merged.Wins[1:] {
			slide = gcdSlides(slide, w.Slide)
		}
		for i := range merged.Wins {
			merged.Wins[i].Slide = slide
		}
		return merged.Normalize()
	}
	epoch := qs[0].Epoch
	for _, q := range qs[1:] {
		epoch = query.EpochGCD(epoch, q.Epoch)
	}
	if allAgg {
		var aggs []query.Agg
		for _, q := range qs {
			aggs = append(aggs, q.Aggs...)
		}
		return query.Query{
			Aggs:    aggs,
			Preds:   qs[0].Preds,
			Epoch:   epoch,
			GroupBy: qs[0].GroupBy, // identical across the set (Rewritable)
		}.Normalize()
	}

	// Merged predicates: attribute constrained iff constrained in every
	// query, with the widened range.
	merged := qs[0].Preds
	for _, q := range qs[1:] {
		merged = query.UnionPreds(merged, q.Preds)
	}
	mergedFor := make(map[field.Attr]query.Predicate, len(merged))
	for _, p := range merged {
		mergedFor[p.Attr] = p
	}

	attrSet := make(map[field.Attr]bool)
	for _, q := range qs {
		for _, a := range q.Attrs {
			attrSet[a] = true
		}
		for _, a := range q.AggAttrs() {
			attrSet[a] = true
		}
		if q.GroupBy != nil {
			attrSet[q.GroupBy.Attr] = true
		}
		for _, p := range q.Preds {
			if mp, ok := mergedFor[p.Attr]; ok && mp == p {
				continue // filtered identically in-network; no raw value needed
			}
			attrSet[p.Attr] = true
		}
	}
	attrs := make([]field.Attr, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })

	return query.Query{
		Attrs: attrs,
		Preds: merged,
		Epoch: epoch,
	}.Normalize()
}

// gcdSlides is the GCD of two reporting slides.
func gcdSlides(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
