package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/field"
	"repro/internal/query"
)

func TestSynthesizeEmpty(t *testing.T) {
	if got := Synthesize(nil); len(got.Attrs) != 0 || len(got.Aggs) != 0 {
		t.Fatalf("empty synthesize = %v", got)
	}
}

func TestSynthesizeSingleton(t *testing.T) {
	q := query.MustParse("SELECT light WHERE light > 100 EPOCH DURATION 4096")
	s := Synthesize([]query.Query{q})
	if !s.Equal(q) {
		t.Fatalf("singleton synthesize changed query: %v vs %v", s, q)
	}
	// In particular, the predicate attribute is NOT acquired: the predicate
	// is applied identically in-network.
	if s.HasAttr(field.AttrLight) && len(s.Attrs) != 1 {
		t.Fatalf("attrs = %v", s.Attrs)
	}
}

func TestSynthesizeAllAggregation(t *testing.T) {
	a := query.MustParse("SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	b := query.MustParse("SELECT MIN(light) WHERE temp > 20 EPOCH DURATION 8192")
	s := Synthesize([]query.Query{a, b})
	if !s.IsAggregation() {
		t.Fatal("all-aggregation set must synthesize to an aggregation query")
	}
	if len(s.Aggs) != 2 || s.Epoch != 4096*time.Millisecond {
		t.Fatalf("synthesized = %v", s)
	}
	if !query.PredsEqual(s.Preds, a.Preds) {
		t.Fatalf("preds changed: %v", s.Preds)
	}
}

func TestSynthesizeMixed(t *testing.T) {
	acq := query.MustParse("SELECT light WHERE light > 100 EPOCH DURATION 4096")
	agg := query.MustParse("SELECT MAX(temp) WHERE light > 200 EPOCH DURATION 8192")
	s := Synthesize([]query.Query{acq, agg})
	if s.IsAggregation() {
		t.Fatal("mixed set must synthesize to acquisition")
	}
	// light predicate widened to >100; both queries' predicates differ from
	// the merged one... acq's (100,∞) equals merged, agg's (200,∞) differs →
	// light must be acquired for re-filtering the aggregation query.
	if !s.HasAttr(field.AttrLight) || !s.HasAttr(field.AttrTemp) {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	if s.Epoch != 4096*time.Millisecond {
		t.Fatalf("epoch = %v", s.Epoch)
	}
}

func TestSynthesizeIdenticalPredsNotAcquired(t *testing.T) {
	// Two queries with the same predicate on humidity: filtering happens
	// in-network; humidity need not be acquired.
	a := query.MustParse("SELECT light WHERE humidity > 50 EPOCH DURATION 4096")
	b := query.MustParse("SELECT temp WHERE humidity > 50 EPOCH DURATION 4096")
	s := Synthesize([]query.Query{a, b})
	if s.HasAttr(field.AttrHumidity) {
		t.Fatalf("humidity acquired unnecessarily: %v", s.Attrs)
	}
	if _, ok := s.PredFor(field.AttrHumidity); !ok {
		t.Fatal("shared predicate must be retained")
	}
}

func TestSynthesizeDivergentPredsAcquired(t *testing.T) {
	a := query.MustParse("SELECT light WHERE humidity > 50 EPOCH DURATION 4096")
	b := query.MustParse("SELECT temp WHERE humidity > 70 EPOCH DURATION 4096")
	s := Synthesize([]query.Query{a, b})
	if !s.HasAttr(field.AttrHumidity) {
		t.Fatalf("humidity needed for re-filtering: %v", s.Attrs)
	}
	p, ok := s.PredFor(field.AttrHumidity)
	if !ok || p.Min != 50.000000000000007 && !(p.Min > 50 && p.Min < 50.01) {
		t.Fatalf("merged humidity pred = %v", p)
	}
}

func TestSynthesizeOrderIndependent(t *testing.T) {
	qs := []query.Query{
		query.MustParse("SELECT light WHERE light > 100 AND temp > 10 EPOCH DURATION 4096"),
		query.MustParse("SELECT temp WHERE light > 200 EPOCH DURATION 8192"),
		query.MustParse("SELECT MAX(humidity) WHERE light > 50 EPOCH DURATION 16384"),
	}
	s1 := Synthesize([]query.Query{qs[0], qs[1], qs[2]})
	s2 := Synthesize([]query.Query{qs[2], qs[0], qs[1]})
	s3 := Synthesize([]query.Query{qs[1], qs[2], qs[0]})
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("order dependence:\n%v\n%v\n%v", s1, s2, s3)
	}
}

// Property: Synthesize covers every constituent.
func TestSynthesizeCoversProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 8 {
			seeds = seeds[:8]
		}
		qs := make([]query.Query, 0, len(seeds))
		for _, s := range seeds {
			qs = append(qs, genQueryFromSeed(s, false))
		}
		syn := Synthesize(qs)
		for _, q := range qs {
			if !query.Covers(syn, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for all-aggregation sets with shared predicates, the synthesis
// stays an aggregation query and covers all.
func TestSynthesizeAggCoversProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 8 {
			seeds = seeds[:8]
		}
		shared := []query.Predicate{{Attr: field.AttrTemp, Min: 10, Max: 60}}
		qs := make([]query.Query, 0, len(seeds))
		for _, s := range seeds {
			q := genQueryFromSeed(s, true)
			q.Preds = shared
			q = q.Normalize()
			qs = append(qs, q)
		}
		syn := Synthesize(qs)
		if !syn.IsAggregation() {
			return false
		}
		for _, q := range qs {
			if !query.Covers(syn, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// genQueryFromSeed deterministically derives a small valid query from a
// 32-bit seed; used by property tests in this package.
func genQueryFromSeed(seed uint32, agg bool) query.Query {
	attrs := []field.Attr{field.AttrLight, field.AttrTemp, field.AttrHumidity, field.AttrNodeID}
	a := attrs[seed%4]
	pa := attrs[(seed>>2)%4]
	lo := float64((seed >> 4) % 500)
	hi := lo + 1 + float64((seed>>13)%500)
	epoch := time.Duration(1+(seed>>22)%12) * query.MinEpoch
	q := query.Query{
		Preds: []query.Predicate{{Attr: pa, Min: lo, Max: hi}},
		Epoch: epoch,
	}
	if agg {
		ops := []query.AggOp{query.Max, query.Min, query.Sum, query.Count, query.Avg}
		q.Aggs = []query.Agg{{Op: ops[(seed>>9)%5], Attr: a}}
	} else {
		q.Attrs = []field.Attr{a}
	}
	return q.Normalize()
}
