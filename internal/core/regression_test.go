package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

// Regression for a coverage-violation bug: after the α keep-stale path, an
// ACQUISITION synthetic query can end up serving only AGGREGATION members.
// benefitRate checks rewritability against the synthetic's (acquisition)
// form, but Synthesize recombines the members — and its pure-aggregation
// merge used to adopt the first member's predicates unconditionally,
// producing a synthetic that did not cover the other members. With
// zero-selectivity predicates the broken merge even scored benefit rate
// 1.0. The exact operation sequence below (found by testing/quick)
// triggered it at step 29.
func TestRegressionStaleAggRecombination(t *testing.T) {
	ops := []uint32{0xdb8e5839, 0x25dd1bf7, 0x2fe91148, 0xf21ef1cc, 0xe54f4217,
		0x86f1ec02, 0x9f211b18, 0xc62649f9, 0x5d895b75, 0xc95b379e, 0x983a744d,
		0x410f4b02, 0xb2a0d788, 0xd78b1a0f, 0xdf5e7cda, 0x87efb2ad, 0x70cfaa6c,
		0x6701090f, 0x9b9b484f, 0xd6073f9, 0x223aa555, 0x2a361e77, 0x61ec2c9a,
		0xc0b7deb2, 0x4f614516, 0x4c9e1feb, 0x24afb50b, 0x47250c4b, 0x4626aa63,
		0x5c9c9f68, 0x579fe5e1, 0x14152b00, 0x58fe8b88, 0x9ce54fa2, 0x1c36a730}
	o := newTestOptimizerQuick(0.2)
	nextID := query.ID(1)
	var liveIDs []query.ID
	for step, op := range ops {
		if op%3 != 0 || len(liveIDs) == 0 {
			q := genQueryFromSeed(op, op%5 == 1)
			q.ID = nextID
			nextID++
			if _, err := o.Insert(q); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			liveIDs = append(liveIDs, q.ID)
		} else {
			idx := int(op>>8) % len(liveIDs)
			if _, err := o.Terminate(liveIDs[idx]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			liveIDs = append(liveIDs[:idx], liveIDs[idx+1:]...)
		}
		checkInvariants(t, o)
	}
}

// Soak: the same randomized interleaving as
// TestOptimizerInvariantsUnderRandomWorkload, but across several fixed
// quick seeds so runs are reproducible AND cover more of the input space
// than quick's single time-based seed.
func TestOptimizerInvariantSoak(t *testing.T) {
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(seed))}
		f := func(ops []uint32, alphaSel uint8) bool {
			alphas := []float64{0, 0.2, 0.6, 1.0, 5}
			o := newTestOptimizerQuick(alphas[int(alphaSel)%len(alphas)])
			nextID := query.ID(1)
			var liveIDs []query.ID
			for _, op := range ops {
				if op%3 != 0 || len(liveIDs) == 0 {
					q := genQueryFromSeed(op, op%5 == 1)
					q.ID = nextID
					nextID++
					if _, err := o.Insert(q); err != nil {
						return false
					}
					liveIDs = append(liveIDs, q.ID)
				} else {
					idx := int(op>>8) % len(liveIDs)
					if _, err := o.Terminate(liveIDs[idx]); err != nil {
						return false
					}
					liveIDs = append(liveIDs[:idx], liveIDs[idx+1:]...)
				}
				ft := &fatalCollector{}
				checkInvariants(ft, o)
				if ft.failed {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
