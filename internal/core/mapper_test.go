package core

import (
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
)

func TestMapAcquisitionFilterAndProject(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	mustInsert(t, o, 2, "SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	syn, _ := o.SyntheticFor(1)

	rows := []query.Row{
		{Node: 3, Values: map[field.Attr]float64{field.AttrLight: 150, field.AttrTemp: 20}},
		{Node: 4, Values: map[field.Attr]float64{field.AttrLight: 500, field.AttrTemp: 30}},
	}

	// At t=4096ms both queries fire.
	at := sim.Time(4096 * time.Millisecond)
	acq, agg := o.MapAcquisition(syn.ID, at, rows)
	if len(agg) != 0 {
		t.Fatalf("unexpected aggregation results: %+v", agg)
	}
	if len(acq) != 2 {
		t.Fatalf("user results = %d, want 2", len(acq))
	}
	byID := map[query.ID]UserRows{}
	for _, r := range acq {
		byID[r.QueryID] = r
	}
	// Query 1 sees both rows with both attributes.
	if got := byID[1]; len(got.Rows) != 2 || len(got.Rows[0].Values) != 2 {
		t.Fatalf("query 1 rows = %+v", got.Rows)
	}
	// Query 2 sees only the row with light in [100,300], projected to light.
	q2 := byID[2]
	if len(q2.Rows) != 1 || q2.Rows[0].Node != 3 {
		t.Fatalf("query 2 rows = %+v", q2.Rows)
	}
	if _, hasTemp := q2.Rows[0].Values[field.AttrTemp]; hasTemp {
		t.Fatal("query 2 must not see temp")
	}

	// At t=2048ms only query 1 fires (query 2's epoch is 4096ms).
	acq, _ = o.MapAcquisition(syn.ID, sim.Time(2048*time.Millisecond), rows)
	if len(acq) != 1 || acq[0].QueryID != 1 {
		t.Fatalf("misaligned epoch mapping: %+v", acq)
	}
}

func TestMapAcquisitionDerivesAggregation(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	// An acquisition query covering an aggregation query: MAX computed at
	// the base station.
	mustInsert(t, o, 1, "SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	mustInsert(t, o, 2, "SELECT MAX(light) WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	if o.SyntheticCount() != 1 {
		t.Fatalf("aggregation should be covered: %d synthetic queries", o.SyntheticCount())
	}
	syn, _ := o.SyntheticFor(2)
	rows := []query.Row{
		{Node: 3, Values: map[field.Attr]float64{field.AttrLight: 150, field.AttrTemp: 20}},
		{Node: 4, Values: map[field.Attr]float64{field.AttrLight: 250, field.AttrTemp: 30}},
		{Node: 5, Values: map[field.Attr]float64{field.AttrLight: 500, field.AttrTemp: 10}},
	}
	_, agg := o.MapAcquisition(syn.ID, sim.Time(4096*time.Millisecond), rows)
	if len(agg) != 1 || agg[0].QueryID != 2 {
		t.Fatalf("agg results = %+v", agg)
	}
	r := agg[0].Results[0]
	if r.Empty || r.Value != 250 {
		t.Fatalf("MAX over filtered rows = %+v, want 250", r)
	}
}

func TestMapAcquisitionEmptyAggregate(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light EPOCH DURATION 2048")
	mustInsert(t, o, 2, "SELECT MIN(light) WHERE light >= 900 EPOCH DURATION 2048")
	syn, _ := o.SyntheticFor(2)
	rows := []query.Row{
		{Node: 3, Values: map[field.Attr]float64{field.AttrLight: 100}},
	}
	_, agg := o.MapAcquisition(syn.ID, 0, rows)
	if len(agg) != 1 || !agg[0].Results[0].Empty {
		t.Fatalf("expected empty aggregate, got %+v", agg)
	}
}

func TestMapAggregation(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	mustInsert(t, o, 2, "SELECT MIN(light) WHERE temp > 20 EPOCH DURATION 8192")
	syn, _ := o.SyntheticFor(1)

	maxState := query.NewAggState(query.Agg{Op: query.Max, Attr: field.AttrLight})
	maxState.Add(700)
	minState := query.NewAggState(query.Agg{Op: query.Min, Attr: field.AttrLight})
	minState.Add(700)
	minState.Add(300)
	states := []query.AggState{maxState, minState}

	// t = 8192ms: both fire.
	out := o.MapAggregation(syn.ID, sim.Time(8192*time.Millisecond), states)
	if len(out) != 2 {
		t.Fatalf("results = %+v", out)
	}
	for _, ua := range out {
		switch ua.QueryID {
		case 1:
			if ua.Results[0].Value != 700 {
				t.Fatalf("MAX = %+v", ua.Results[0])
			}
		case 2:
			if ua.Results[0].Value != 300 {
				t.Fatalf("MIN = %+v", ua.Results[0])
			}
		}
	}

	// t = 4096ms: only query 1.
	out = o.MapAggregation(syn.ID, sim.Time(4096*time.Millisecond), states)
	if len(out) != 1 || out[0].QueryID != 1 {
		t.Fatalf("misaligned mapping: %+v", out)
	}
}

func TestMapAggregationMissingState(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	syn, _ := o.SyntheticFor(1)
	out := o.MapAggregation(syn.ID, 0, nil)
	if len(out) != 1 || !out[0].Results[0].Empty {
		t.Fatalf("missing state should map to Empty: %+v", out)
	}
}

func TestMapUnknownSynthetic(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	if acq, agg := o.MapAcquisition(12345, 0, nil); acq != nil || agg != nil {
		t.Fatal("unknown synthetic must map to nothing")
	}
	if out := o.MapAggregation(12345, 0, nil); out != nil {
		t.Fatal("unknown synthetic must map to nothing")
	}
}

func TestAggregateRowsGrouped(t *testing.T) {
	uq := query.MustParse("SELECT MAX(light), COUNT(light) GROUP BY temp BUCKET 10 EPOCH DURATION 4096")
	rows := []query.Row{
		{Node: 1, Values: map[field.Attr]float64{field.AttrLight: 100, field.AttrTemp: 5}},
		{Node: 2, Values: map[field.Attr]float64{field.AttrLight: 300, field.AttrTemp: 9}},
		{Node: 3, Values: map[field.Attr]float64{field.AttrLight: 200, field.AttrTemp: 25}},
	}
	results := AggregateRows(uq, 0, rows)
	// Two groups (0 and 2), two aggregates each → 4 tuples.
	if len(results) != 4 {
		t.Fatalf("results = %+v", results)
	}
	byKey := map[string]float64{}
	for _, r := range results {
		byKey[r.Agg.String()+string(rune('0'+r.Group))] = r.Value
	}
	if byKey["MAX(light)0"] != 300 || byKey["MAX(light)2"] != 200 {
		t.Fatalf("MAX wrong: %+v", byKey)
	}
	if byKey["COUNT(light)0"] != 2 || byKey["COUNT(light)2"] != 1 {
		t.Fatalf("COUNT wrong: %+v", byKey)
	}
}

func TestAggregateRowsSkipsRowsMissingGroupAttr(t *testing.T) {
	uq := query.MustParse("SELECT MAX(light) GROUP BY temp EPOCH DURATION 4096")
	rows := []query.Row{
		{Node: 1, Values: map[field.Attr]float64{field.AttrLight: 100}}, // no temp
	}
	if got := AggregateRows(uq, 0, rows); len(got) != 0 {
		t.Fatalf("rows without the group attribute must be skipped: %+v", got)
	}
}

func TestAggregateStatesUngroupedEmpty(t *testing.T) {
	uq := query.MustParse("SELECT MIN(light) EPOCH DURATION 4096")
	got := AggregateStates(uq, 0, nil)
	if len(got) != 1 || !got[0].Empty {
		t.Fatalf("ungrouped empty epoch must yield one Empty tuple: %+v", got)
	}
	// Grouped queries yield nothing for empty epochs (absent buckets are
	// meaningful).
	uqG := query.MustParse("SELECT MIN(light) GROUP BY temp EPOCH DURATION 4096")
	if got := AggregateStates(uqG, 0, nil); len(got) != 0 {
		t.Fatalf("grouped empty epoch must yield nothing: %+v", got)
	}
}
