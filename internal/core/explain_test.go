package core

import (
	"strings"
	"testing"
)

func TestExplainSharedAcquisition(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	mustInsert(t, o, 2, "SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")

	e, err := o.Explain(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.SharedWith) != 1 || e.SharedWith[0] != 1 {
		t.Fatalf("shared with %v", e.SharedWith)
	}
	text := e.String()
	for _, want := range []string{"re-filter rows", "project rows", "decimate epochs", "shared:"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
	if e.UserCost <= 0 || e.SyntheticShare <= 0 || e.GroupSavings <= 0 {
		t.Fatalf("estimates not populated: %+v", e)
	}
	if e.EstSelectivity <= 0 || e.EstSelectivity > 1 {
		t.Fatalf("selectivity = %f", e.EstSelectivity)
	}
}

func TestExplainDerivedAggregate(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light, nodeid WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	mustInsert(t, o, 2, "SELECT MAX(light) WHERE light >= 100 AND light <= 300 GROUP BY nodeid BUCKET 4 EPOCH DURATION 4096")
	e, err := o.Explain(2)
	if err != nil {
		t.Fatal(err)
	}
	text := e.String()
	for _, want := range []string{"compute MAX(light)", "bucket rows by GROUP BY nodeid BUCKET 4"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
}

func TestExplainAggregationShared(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	mustInsert(t, o, 2, "SELECT MIN(light) WHERE temp > 20 EPOCH DURATION 4096")
	e, err := o.Explain(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "project aggregates MAX(light)") {
		t.Errorf("explanation:\n%s", e)
	}
}

func TestExplainSolo(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT MAX(light) EPOCH DURATION 4096")
	e, err := o.Explain(1)
	if err != nil {
		t.Fatal(err)
	}
	text := e.String()
	if !strings.Contains(text, "runs alone") || !strings.Contains(text, "as-is") {
		t.Errorf("explanation:\n%s", text)
	}
	if _, err := o.Explain(99); err == nil {
		t.Fatal("unknown query must error")
	}
}
