package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cost"
	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
)

func newTestOptimizer(t *testing.T, alpha float64) *Optimizer {
	t.Helper()
	m, err := cost.NewModel([]int{1, 3, 6, 6}, cost.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewOptimizer(m, Options{Alpha: alpha})
}

func mustInsert(t *testing.T, o *Optimizer, id query.ID, s string) Change {
	t.Helper()
	q := query.MustParse(s)
	q.ID = id
	ch, err := o.Insert(q)
	if err != nil {
		t.Fatalf("Insert(%d, %q): %v", id, s, err)
	}
	return ch
}

func TestInsertFirstQueryBecomesSynthetic(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	ch := mustInsert(t, o, 1, "SELECT light WHERE light > 100 EPOCH DURATION 4096")
	if len(ch.Inject) != 1 || len(ch.Abort) != 0 {
		t.Fatalf("change = %+v", ch)
	}
	if o.SyntheticCount() != 1 || o.UserCount() != 1 {
		t.Fatalf("counts: syn=%d user=%d", o.SyntheticCount(), o.UserCount())
	}
	syn, ok := o.SyntheticFor(1)
	if !ok || !query.Covers(syn, o.UserQueries()[0]) {
		t.Fatal("synthetic must cover its user query")
	}
	if syn.ID < SyntheticIDBase {
		t.Fatalf("synthetic ID %d in user space", syn.ID)
	}
}

func TestInsertCoveredQueryNoNetworkChange(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	ch := mustInsert(t, o, 2, "SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	if !ch.Empty() {
		t.Fatalf("covered insert should not touch the network: %+v", ch)
	}
	if o.SyntheticCount() != 1 {
		t.Fatalf("synthetic count = %d", o.SyntheticCount())
	}
	s1, _ := o.SyntheticFor(1)
	s2, _ := o.SyntheticFor(2)
	if s1.ID != s2.ID {
		t.Fatal("both users must map to the same synthetic query")
	}
}

func TestInsertBeneficialMergeReplacesSynthetic(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	ch1 := mustInsert(t, o, 1, "SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	ch2 := mustInsert(t, o, 2, "SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	if len(ch2.Inject) != 1 || len(ch2.Abort) != 1 {
		t.Fatalf("merge change = %+v", ch2)
	}
	if ch2.Abort[0] != ch1.Inject[0].ID {
		t.Fatal("merge must abort the replaced synthetic query")
	}
	if o.SyntheticCount() != 1 {
		t.Fatalf("synthetic count = %d", o.SyntheticCount())
	}
	for _, uid := range []query.ID{1, 2} {
		syn, _ := o.SyntheticFor(uid)
		uq := findUser(o, uid)
		if !query.Covers(syn, uq) {
			t.Fatalf("user %d not covered", uid)
		}
	}
}

func TestInsertNonBeneficialStaysSeparate(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	// The §3.1.3 pair with negative benefit.
	mustInsert(t, o, 1, "select light where 280<light<600 epoch duration 4096")
	ch := mustInsert(t, o, 2, "select light where 100<light<300 epoch duration 8192")
	if len(ch.Inject) != 1 || len(ch.Abort) != 0 {
		t.Fatalf("non-beneficial insert should add a separate synthetic: %+v", ch)
	}
	if o.SyntheticCount() != 2 {
		t.Fatalf("synthetic count = %d, want 2", o.SyntheticCount())
	}
}

// The full §3.1.3 trace: q1 and q2 stay separate; q3 merges with q2; the
// merged query then absorbs q1 via the recursive re-insert, ending with ONE
// synthetic query over light ∈ (100,600) at epoch 4096ms.
func TestPaperExampleRecursiveInsert(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "select light where 280<light<600 epoch duration 4096")
	mustInsert(t, o, 2, "select light where 100<light<300 epoch duration 8192")
	if o.SyntheticCount() != 2 {
		t.Fatalf("after q1,q2: %d synthetic queries, want 2", o.SyntheticCount())
	}
	ch := mustInsert(t, o, 3, "select light where 150<light<500 epoch duration 8192")
	if o.SyntheticCount() != 1 {
		t.Fatalf("after q3: %d synthetic queries, want 1 (recursive merge)", o.SyntheticCount())
	}
	// Both previous synthetic queries aborted, one new injected.
	if len(ch.Abort) != 2 || len(ch.Inject) != 1 {
		t.Fatalf("change = %+v", ch)
	}
	final := ch.Inject[0]
	if final.Epoch != 4096*time.Millisecond {
		t.Fatalf("final epoch = %v", final.Epoch)
	}
	p, ok := final.PredFor(field.AttrLight)
	if !ok {
		t.Fatalf("no light predicate: %v", final)
	}
	if !(p.Min > 100 && p.Min < 100.01 && p.Max > 599.99 && p.Max < 600) {
		t.Fatalf("final pred = %v, want (100,600)", p)
	}
	for _, uid := range []query.ID{1, 2, 3} {
		syn, _ := o.SyntheticFor(uid)
		if !query.Covers(syn, findUser(o, uid)) {
			t.Fatalf("user %d not covered by final synthetic", uid)
		}
	}
}

func TestInsertAggregationPairsMerge(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	ch := mustInsert(t, o, 2, "SELECT MIN(light) WHERE temp > 20 EPOCH DURATION 8192")
	if o.SyntheticCount() != 1 {
		t.Fatalf("same-predicate aggregations must merge: %d", o.SyntheticCount())
	}
	if len(ch.Inject) != 1 || !ch.Inject[0].IsAggregation() {
		t.Fatalf("merged synthetic = %+v", ch.Inject)
	}
}

func TestInsertAggregationDifferentPredsStaySeparate(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	mustInsert(t, o, 2, "SELECT MAX(light) WHERE temp > 30 EPOCH DURATION 4096")
	if o.SyntheticCount() != 2 {
		t.Fatalf("different-predicate aggregations must not merge: %d", o.SyntheticCount())
	}
}

func TestInsertErrors(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	q := query.MustParse("SELECT light")
	q.ID = 0
	if _, err := o.Insert(q); err == nil {
		t.Fatal("zero ID must error")
	}
	q.ID = SyntheticIDBase
	if _, err := o.Insert(q); err == nil {
		t.Fatal("ID in synthetic space must error")
	}
	mustInsert(t, o, 5, "SELECT light")
	q.ID = 5
	if _, err := o.Insert(q); err == nil {
		t.Fatal("duplicate ID must error")
	}
	bad := query.Query{ID: 9} // empty select list
	if _, err := o.Insert(bad); err == nil {
		t.Fatal("invalid query must error")
	}
}

func TestTerminateLastQueryAborts(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	ch1 := mustInsert(t, o, 1, "SELECT light EPOCH DURATION 4096")
	ch, err := o.Terminate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Abort) != 1 || ch.Abort[0] != ch1.Inject[0].ID {
		t.Fatalf("change = %+v", ch)
	}
	if o.SyntheticCount() != 0 || o.UserCount() != 0 {
		t.Fatal("tables must be empty")
	}
}

func TestTerminateUnknownErrors(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	if _, err := o.Terminate(42); err == nil {
		t.Fatal("unknown ID must error")
	}
}

func TestTerminateCoveredQueryNoChange(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	mustInsert(t, o, 2, "SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	// Terminating the covered query leaves the requirement unchanged.
	ch, err := o.Terminate(2)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Empty() {
		t.Fatalf("termination of covered query should be invisible: %+v", ch)
	}
	if o.SyntheticCount() != 1 {
		t.Fatalf("synthetic count = %d", o.SyntheticCount())
	}
}

// With a large α the optimizer hides a shrinking termination from the
// network; with α = 0 it must re-optimize.
func TestTerminateAlphaControlsRewrite(t *testing.T) {
	for _, tc := range []struct {
		alpha      float64
		wantChange bool
	}{
		{alpha: 100, wantChange: false},
		{alpha: 1e-9, wantChange: true},
	} {
		o := newTestOptimizer(t, tc.alpha)
		mustInsert(t, o, 1, "SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
		mustInsert(t, o, 2, "SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
		if o.SyntheticCount() != 1 {
			t.Fatalf("precondition: queries should have merged")
		}
		ch, err := o.Terminate(2)
		if err != nil {
			t.Fatal(err)
		}
		if got := !ch.Empty(); got != tc.wantChange {
			t.Fatalf("alpha=%v: network change = %v, want %v (%+v)", tc.alpha, got, tc.wantChange, ch)
		}
		// Either way, user 1 must still be covered.
		syn, ok := o.SyntheticFor(1)
		if !ok || !query.Covers(syn, findUser(o, 1)) {
			t.Fatal("survivor must remain covered")
		}
	}
}

func TestTerminateReinsertRemerges(t *testing.T) {
	// Three queries merged into one synthetic; terminating one with α=0
	// re-inserts the remaining two, which should re-merge with each other.
	o := newTestOptimizer(t, 1e-9)
	mustInsert(t, o, 1, "SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	mustInsert(t, o, 2, "SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	mustInsert(t, o, 3, "SELECT light WHERE 120 < light AND light < 480 EPOCH DURATION 8192")
	if o.SyntheticCount() != 1 {
		t.Fatalf("precondition: one synthetic, got %d", o.SyntheticCount())
	}
	if _, err := o.Terminate(2); err != nil {
		t.Fatal(err)
	}
	if o.UserCount() != 2 {
		t.Fatalf("user count = %d", o.UserCount())
	}
	for _, uid := range []query.ID{1, 3} {
		syn, ok := o.SyntheticFor(uid)
		if !ok || !query.Covers(syn, findUser(o, uid)) {
			t.Fatalf("user %d lost coverage after reinsert", uid)
		}
	}
}

func TestBenefitAccounting(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	mustInsert(t, o, 2, "SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	gotTotal := o.TotalBenefit()
	wantTotal := o.TotalUserCost() - o.TotalSyntheticCost()
	if math.Abs(gotTotal-wantTotal) > 1e-12 {
		t.Fatalf("benefit bookkeeping drifted: %g vs %g", gotTotal, wantTotal)
	}
	if gotTotal <= 0 {
		t.Fatal("merged workload should have positive benefit")
	}
}

func TestFromList(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	mustInsert(t, o, 1, "SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	mustInsert(t, o, 2, "SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	syn, _ := o.SyntheticFor(1)
	from := o.FromList(syn.ID)
	if len(from) != 2 || from[0] != 1 || from[1] != 2 {
		t.Fatalf("from list = %v", from)
	}
	if got := o.FromList(999); got != nil {
		t.Fatalf("unknown synthetic from list = %v", got)
	}
}

// Invariant check used by the random-workload property test.
func checkInvariants(t interface{ Fatalf(string, ...any) }, o *Optimizer) {
	for _, uq := range o.UserQueries() {
		syn, ok := o.SyntheticFor(uq.ID)
		if !ok {
			t.Fatalf("user %d has no synthetic query", uq.ID)
		}
		if !query.Covers(syn, uq) {
			t.Fatalf("user %d not covered by its synthetic query\nuser: %v\nsyn:  %v", uq.ID, uq, syn)
		}
	}
	// Every synthetic query serves at least one live user and every
	// from-list entry is live.
	live := make(map[query.ID]bool)
	for _, uq := range o.UserQueries() {
		live[uq.ID] = true
	}
	for _, s := range o.SyntheticQueries() {
		from := o.FromList(s.ID)
		if len(from) == 0 {
			t.Fatalf("synthetic %d has empty from list", s.ID)
		}
		for _, uid := range from {
			if !live[uid] {
				t.Fatalf("synthetic %d references dead user %d", s.ID, uid)
			}
		}
	}
}

// Property: after any interleaving of inserts and terminations, every live
// user query is covered by exactly one running synthetic query, and no
// synthetic query outlives its contributors (DESIGN.md invariant 3).
func TestOptimizerInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(ops []uint32, alphaSel uint8) bool {
		alphas := []float64{0, 0.2, 0.6, 1.0, 5}
		o := newTestOptimizerQuick(alphas[int(alphaSel)%len(alphas)])
		nextID := query.ID(1)
		var liveIDs []query.ID
		for _, op := range ops {
			if op%3 != 0 || len(liveIDs) == 0 {
				q := genQueryFromSeed(op, op%5 == 1)
				q.ID = nextID
				nextID++
				if _, err := o.Insert(q); err != nil {
					return false
				}
				liveIDs = append(liveIDs, q.ID)
			} else {
				idx := int(op>>8) % len(liveIDs)
				if _, err := o.Terminate(liveIDs[idx]); err != nil {
					return false
				}
				liveIDs = append(liveIDs[:idx], liveIDs[idx+1:]...)
			}
			ft := &fatalCollector{}
			checkInvariants(ft, o)
			if ft.failed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

type fatalCollector struct{ failed bool }

func (f *fatalCollector) Fatalf(string, ...any) { f.failed = true }

func newTestOptimizerQuick(alpha float64) *Optimizer {
	m, err := cost.NewModel([]int{1, 3, 6, 6}, cost.Config{})
	if err != nil {
		panic(err)
	}
	return NewOptimizer(m, Options{Alpha: alpha})
}

func findUser(o *Optimizer, id query.ID) query.Query {
	for _, q := range o.UserQueries() {
		if q.ID == id {
			return q
		}
	}
	return query.Query{}
}

// Property (DESIGN.md invariant 4): Insert never increases the total
// estimated synthetic cost by more than the new query's own cost — the
// greedy only merges when beneficial.
func TestInsertCostMonotonicityProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) > 24 {
			seeds = seeds[:24]
		}
		o := newTestOptimizerQuick(0.6)
		for i, s := range seeds {
			q := genQueryFromSeed(s, s%4 == 1)
			q.ID = query.ID(i + 1)
			before := o.TotalSyntheticCost()
			qCost := o.Model().Cost(q)
			if _, err := o.Insert(q); err != nil {
				return false
			}
			after := o.TotalSyntheticCost()
			if after > before+qCost+1e-9 {
				return false
			}
			// Total benefit is never negative: merging is at worst a no-op.
			if o.TotalBenefit() < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchNetsChanges(t *testing.T) {
	// Three mutually mergeable queries: sequential insertion churns through
	// intermediate synthetic queries; a batch nets to exactly one injection
	// and no abortions.
	qs := []string{
		"SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192",
		"SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192",
		"SELECT light WHERE 120 < light AND light < 480 EPOCH DURATION 8192",
	}
	seq := newTestOptimizer(t, 0.6)
	floods := 0
	for i, s := range qs {
		q := query.MustParse(s)
		q.ID = query.ID(i + 1)
		ch, err := seq.Insert(q)
		if err != nil {
			t.Fatal(err)
		}
		floods += len(ch.Inject) + len(ch.Abort)
	}

	batch := newTestOptimizer(t, 0.6)
	var queries []query.Query
	for i, s := range qs {
		q := query.MustParse(s)
		q.ID = query.ID(i + 1)
		queries = append(queries, q)
	}
	ch, err := batch.InsertBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Inject) != 1 || len(ch.Abort) != 0 {
		t.Fatalf("batch change = %+v", ch)
	}
	if floods <= len(ch.Inject) {
		t.Fatalf("sequential floods (%d) should exceed batch floods (%d)", floods, len(ch.Inject))
	}
	// Same final state either way.
	if batch.SyntheticCount() != seq.SyntheticCount() {
		t.Fatalf("synthetic counts differ: %d vs %d", batch.SyntheticCount(), seq.SyntheticCount())
	}
	checkInvariants(t, batch)
}

func TestInsertBatchPartialFailure(t *testing.T) {
	o := newTestOptimizer(t, 0.6)
	q1 := query.MustParse("SELECT light EPOCH DURATION 4096")
	q1.ID = 1
	bad := query.Query{ID: 2} // invalid
	ch, err := o.InsertBatch([]query.Query{q1, bad})
	if err == nil {
		t.Fatal("invalid query must fail the batch")
	}
	// q1 was admitted before the failure and its injection is reported.
	if len(ch.Inject) != 1 || o.UserCount() != 1 {
		t.Fatalf("partial state: %+v users=%d", ch, o.UserCount())
	}
	checkInvariants(t, o)
}

// Differential soak: after a long random interleaving of inserts and
// terminations, rebuilding the synthetic set from scratch (re-inserting the
// live user queries into a fresh optimizer) must cover everything and cost
// about the same — the incremental state does not rot. Kept-stale synthetic
// queries (the α mechanism) may make the incremental set at most modestly
// more expensive than a fresh greedy pass.
func TestIncrementalMatchesRebuildSoak(t *testing.T) {
	o := newTestOptimizerQuick(0.6)
	rng := sim.NewRand(99)
	var live []query.Query
	nextID := query.ID(1)
	for step := 0; step < 600; step++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			q := genQueryFromSeed(uint32(rng.Intn(1<<30)), rng.Float64() < 0.4)
			q.ID = nextID
			nextID++
			if _, err := o.Insert(q); err != nil {
				t.Fatal(err)
			}
			live = append(live, q)
		} else {
			idx := rng.Intn(len(live))
			if _, err := o.Terminate(live[idx].ID); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
	}
	checkInvariants(t, o)

	fresh := newTestOptimizerQuick(0.6)
	for _, q := range live {
		if _, err := fresh.Insert(q); err != nil {
			t.Fatal(err)
		}
	}
	incCost := o.TotalSyntheticCost()
	freshCost := fresh.TotalSyntheticCost()
	if incCost > 1.5*freshCost+1e-9 {
		t.Fatalf("incremental state rotted: cost %.5f vs fresh rebuild %.5f", incCost, freshCost)
	}
	if o.UserCount() != fresh.UserCount() {
		t.Fatalf("user counts differ: %d vs %d", o.UserCount(), fresh.UserCount())
	}
}
