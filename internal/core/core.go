package core
