package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"

	"repro/internal/field"
)

// Parse parses a TinyDB-dialect query string:
//
//	SELECT light, temp FROM sensors WHERE 280 < light AND light < 600
//	    EPOCH DURATION 4096ms
//	SELECT MAX(light), MIN(temp) WHERE temp >= 20 EPOCH DURATION 8s
//	select light where 280<light<600 epoch duration 2048
//
// Keywords are case-insensitive. The FROM clause is accepted and ignored
// (the network is the only table). WHERE accepts comparisons
// (<, <=, >, >=, =), chained comparisons (lo < attr < hi), and BETWEEN
// lo AND hi, all joined by AND. EPOCH DURATION takes an integer with an
// optional ms/s suffix; a bare integer means milliseconds. A query without
// an EPOCH DURATION clause defaults to MinEpoch.
//
// The returned query is normalized and validated; its ID is zero.
func Parse(input string) (Query, error) {
	toks, err := lex(input)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, fmt.Errorf("query: parse %q: %w", input, err)
	}
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return Query{}, fmt.Errorf("query: parse %q: %w", input, err)
	}
	return q, nil
}

// MustParse is Parse for tests, examples and hand-written workloads; it
// panics on error.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind uint8

const (
	tokWord tokKind = iota + 1
	tokNumber
	tokOp     // < <= > >= =
	tokLParen // (
	tokRParen // )
	tokComma
	tokEOF
)

type token struct {
	kind tokKind
	text string
	num  float64
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ","})
			i++
		case c == '<' || c == '>' || c == '=':
			op := string(c)
			i++
			if i < len(s) && s[i] == '=' && op != "=" {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tokOp, text: op})
		case unicode.IsDigit(c) || c == '.' || c == '-' || c == '+':
			j := i
			if c == '-' || c == '+' {
				j++
			}
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' || s[j] == 'E') {
				// allow exponent sign
				if (s[j] == 'e' || s[j] == 'E') && j+1 < len(s) && (s[j+1] == '-' || s[j+1] == '+') {
					j++
				}
				j++
			}
			text := s[i:j]
			// A trailing unit (ms/s) belongs to the duration syntax; keep it
			// as a following word token.
			num, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q", text)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: num})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectWord(word string) error {
	t := p.next()
	if t.kind != tokWord || !strings.EqualFold(t.text, word) {
		return fmt.Errorf("expected %q, got %q", word, t.text)
	}
	return nil
}

func (p *parser) peekWord(word string) bool {
	t := p.peek()
	return t.kind == tokWord && strings.EqualFold(t.text, word)
}

func (p *parser) parseQuery() (Query, error) {
	var q Query
	if err := p.expectWord("SELECT"); err != nil {
		return q, err
	}
	if err := p.parseSelectList(&q); err != nil {
		return q, err
	}
	if p.peekWord("FROM") {
		p.next()
		if t := p.next(); t.kind != tokWord {
			return q, fmt.Errorf("expected table name after FROM, got %q", t.text)
		}
	}
	if p.peekWord("WHERE") {
		p.next()
		if err := p.parseWhere(&q); err != nil {
			return q, err
		}
	}
	if p.peekWord("GROUP") {
		p.next()
		if err := p.expectWord("BY"); err != nil {
			return q, err
		}
		at := p.next()
		if at.kind != tokWord {
			return q, fmt.Errorf("expected attribute after GROUP BY, got %q", at.text)
		}
		attr, err := field.ParseAttr(strings.ToLower(at.text))
		if err != nil {
			return q, err
		}
		g := &GroupBy{Attr: attr, Width: 1}
		if p.peekWord("BUCKET") {
			p.next()
			w := p.next()
			if w.kind != tokNumber {
				return q, fmt.Errorf("expected bucket width, got %q", w.text)
			}
			g.Width = w.num
		}
		q.GroupBy = g
	}
	q.Epoch = MinEpoch
	if p.peekWord("EPOCH") {
		p.next()
		if err := p.expectWord("DURATION"); err != nil {
			return q, err
		}
		d, err := p.parseDuration()
		if err != nil {
			return q, err
		}
		q.Epoch = d
	}
	if p.peekWord("LIFETIME") {
		p.next()
		d, err := p.parseDuration()
		if err != nil {
			return q, err
		}
		q.Lifetime = d
	}
	if t := p.peek(); t.kind != tokEOF {
		return q, fmt.Errorf("unexpected trailing input %q", t.text)
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	for {
		t := p.next()
		if t.kind != tokWord {
			return fmt.Errorf("expected attribute or aggregate, got %q", t.text)
		}
		if p.peek().kind == tokLParen {
			if win, ok := strings.CutPrefix(strings.ToUpper(t.text), "WIN"); ok && win != "" {
				w, err := p.parseWin(win)
				if err != nil {
					return err
				}
				q.Wins = append(q.Wins, w)
				goto next
			}
			op, err := ParseAggOp(t.text)
			if err != nil {
				return err
			}
			p.next() // (
			at := p.next()
			if at.kind != tokWord {
				return fmt.Errorf("expected attribute inside %s(), got %q", op, at.text)
			}
			attr, err := field.ParseAttr(strings.ToLower(at.text))
			if err != nil {
				return err
			}
			if t := p.next(); t.kind != tokRParen {
				return fmt.Errorf("expected ) after %s(%s", op, attr)
			}
			q.Aggs = append(q.Aggs, Agg{Op: op, Attr: attr})
		} else {
			attr, err := field.ParseAttr(strings.ToLower(t.text))
			if err != nil {
				return err
			}
			q.Attrs = append(q.Attrs, attr)
		}
	next:
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return nil
	}
}

// parseWin parses the tail of a windowed aggregate after the leading
// "WIN<op>" word: "(attr, window[, slide])".
func (p *parser) parseWin(opName string) (Win, error) {
	op, err := ParseAggOp(opName)
	if err != nil {
		return Win{}, fmt.Errorf("unknown windowed aggregate WIN%s", opName)
	}
	p.next() // (
	at := p.next()
	if at.kind != tokWord {
		return Win{}, fmt.Errorf("expected attribute inside WIN%s(), got %q", op, at.text)
	}
	attr, err := field.ParseAttr(strings.ToLower(at.text))
	if err != nil {
		return Win{}, err
	}
	w := Win{Op: op, Attr: attr, Slide: 1}
	if t := p.next(); t.kind != tokComma {
		return Win{}, fmt.Errorf("expected window size in WIN%s(%s, ...)", op, attr)
	}
	size := p.next()
	if size.kind != tokNumber || size.num != float64(int(size.num)) {
		return Win{}, fmt.Errorf("expected integer window size, got %q", size.text)
	}
	w.Window = int(size.num)
	if p.peek().kind == tokComma {
		p.next()
		slide := p.next()
		if slide.kind != tokNumber || slide.num != float64(int(slide.num)) {
			return Win{}, fmt.Errorf("expected integer slide, got %q", slide.text)
		}
		w.Slide = int(slide.num)
	}
	if t := p.next(); t.kind != tokRParen {
		return Win{}, fmt.Errorf("expected ) after WIN%s(...)", op)
	}
	return w, nil
}

func (p *parser) parseWhere(q *Query) error {
	for {
		if err := p.parseCondition(q); err != nil {
			return err
		}
		if p.peekWord("AND") {
			p.next()
			continue
		}
		return nil
	}
}

// parseCondition handles:
//
//	attr op number | number op attr | number op attr op number
//	attr BETWEEN number AND number
func (p *parser) parseCondition(q *Query) error {
	t := p.next()
	switch t.kind {
	case tokWord:
		attr, err := field.ParseAttr(strings.ToLower(t.text))
		if err != nil {
			return err
		}
		if p.peekWord("BETWEEN") {
			p.next()
			lo := p.next()
			if lo.kind != tokNumber {
				return fmt.Errorf("expected number after BETWEEN, got %q", lo.text)
			}
			if err := p.expectWord("AND"); err != nil {
				return err
			}
			hi := p.next()
			if hi.kind != tokNumber {
				return fmt.Errorf("expected number after BETWEEN ... AND, got %q", hi.text)
			}
			q.Preds = append(q.Preds, Predicate{Attr: attr, Min: lo.num, Max: hi.num})
			return nil
		}
		op := p.next()
		if op.kind != tokOp {
			return fmt.Errorf("expected comparison operator, got %q", op.text)
		}
		v := p.next()
		if v.kind != tokNumber {
			return fmt.Errorf("expected number, got %q", v.text)
		}
		pred, err := predFromCmp(attr, op.text, v.num, false)
		if err != nil {
			return err
		}
		q.Preds = append(q.Preds, pred)
		return nil

	case tokNumber:
		op1 := p.next()
		if op1.kind != tokOp {
			return fmt.Errorf("expected comparison operator after %v, got %q", t.num, op1.text)
		}
		at := p.next()
		if at.kind != tokWord {
			return fmt.Errorf("expected attribute, got %q", at.text)
		}
		attr, err := field.ParseAttr(strings.ToLower(at.text))
		if err != nil {
			return err
		}
		pred, err := predFromCmp(attr, op1.text, t.num, true)
		if err != nil {
			return err
		}
		q.Preds = append(q.Preds, pred)
		// Chained comparison: 280 < light < 600.
		if p.peek().kind == tokOp {
			op2 := p.next()
			v2 := p.next()
			if v2.kind != tokNumber {
				return fmt.Errorf("expected number after %q, got %q", op2.text, v2.text)
			}
			pred2, err := predFromCmp(attr, op2.text, v2.num, false)
			if err != nil {
				return err
			}
			q.Preds = append(q.Preds, pred2)
		}
		return nil

	default:
		return fmt.Errorf("expected condition, got %q", t.text)
	}
}

// predFromCmp builds the range predicate for a single comparison. flipped
// means the literal is on the left (lit op attr), which mirrors the
// operator. Strict bounds are nudged one ULP inward so the interval algebra
// stays closed.
func predFromCmp(attr field.Attr, op string, lit float64, flipped bool) (Predicate, error) {
	if flipped {
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	p := Predicate{Attr: attr, Min: math.Inf(-1), Max: math.Inf(1)}
	switch op {
	case "<":
		p.Max = math.Nextafter(lit, math.Inf(-1))
	case "<=":
		p.Max = lit
	case ">":
		p.Min = math.Nextafter(lit, math.Inf(1))
	case ">=":
		p.Min = lit
	case "=":
		p.Min, p.Max = lit, lit
	default:
		return p, fmt.Errorf("unknown operator %q", op)
	}
	return p, nil
}

func (p *parser) parseDuration() (time.Duration, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("expected duration, got %q", t.text)
	}
	unit := time.Millisecond
	if nt := p.peek(); nt.kind == tokWord {
		switch strings.ToLower(nt.text) {
		case "ms":
			p.next()
		case "s", "sec", "seconds":
			unit = time.Second
			p.next()
		}
	}
	return time.Duration(t.num * float64(unit)), nil
}

// String renders the query in the dialect Parse accepts; Parse(q.String())
// returns a query Equal to q.
func (q Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	first := true
	for _, a := range q.Attrs {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(a.String())
	}
	for _, a := range q.Aggs {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(a.String())
	}
	for _, w := range q.Wins {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(w.String())
	}
	if len(q.Preds) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range q.Preds {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			writePred(&sb, p)
		}
	}
	if q.GroupBy != nil {
		sb.WriteString(" ")
		sb.WriteString(q.GroupBy.String())
	}
	fmt.Fprintf(&sb, " EPOCH DURATION %dms", q.Epoch/time.Millisecond)
	if q.Lifetime > 0 {
		fmt.Fprintf(&sb, " LIFETIME %dms", q.Lifetime/time.Millisecond)
	}
	return sb.String()
}

func writePred(sb *strings.Builder, p Predicate) {
	switch {
	case math.IsInf(p.Min, -1) && math.IsInf(p.Max, 1):
		// Unconstrained predicates are dropped at normalization; render a
		// tautology defensively.
		fmt.Fprintf(sb, "%s >= %s", p.Attr, formatNum(math.Inf(-1)))
	case math.IsInf(p.Min, -1):
		fmt.Fprintf(sb, "%s <= %s", p.Attr, formatNum(p.Max))
	case math.IsInf(p.Max, 1):
		fmt.Fprintf(sb, "%s >= %s", p.Attr, formatNum(p.Min))
	case p.Min == p.Max:
		fmt.Fprintf(sb, "%s = %s", p.Attr, formatNum(p.Min))
	default:
		fmt.Fprintf(sb, "%s >= %s AND %s <= %s", p.Attr, formatNum(p.Min), p.Attr, formatNum(p.Max))
	}
}

func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
