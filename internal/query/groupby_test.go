package query

import (
	"testing"

	"repro/internal/field"
)

func TestParseGroupBy(t *testing.T) {
	q := MustParse("SELECT AVG(light) GROUP BY temp BUCKET 10 EPOCH DURATION 4096")
	if q.GroupBy == nil || q.GroupBy.Attr != field.AttrTemp || q.GroupBy.Width != 10 {
		t.Fatalf("group = %+v", q.GroupBy)
	}
	// Default bucket width is 1.
	q2 := MustParse("SELECT COUNT(nodeid) GROUP BY nodeid EPOCH DURATION 4096")
	if q2.GroupBy.Width != 1 {
		t.Fatalf("default width = %g", q2.GroupBy.Width)
	}
	// Round trip.
	back := MustParse(q.String())
	if !back.GroupBy.Equal(q.GroupBy) || !back.Equal(q) {
		t.Fatalf("round trip: %s vs %s", q, back)
	}
	back2 := MustParse(q2.String())
	if !back2.Equal(q2) {
		t.Fatalf("round trip: %s vs %s", q2, back2)
	}
}

func TestGroupByValidation(t *testing.T) {
	if _, err := Parse("SELECT light GROUP BY temp EPOCH DURATION 4096"); err == nil {
		t.Fatal("GROUP BY on acquisition must be rejected")
	}
	bad := MustParse("SELECT MAX(light) EPOCH DURATION 4096")
	bad.GroupBy = &GroupBy{Attr: field.AttrTemp, Width: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bucket width must be rejected")
	}
	if _, err := Parse("SELECT MAX(light) GROUP BY bogus EPOCH DURATION 4096"); err == nil {
		t.Fatal("unknown group attribute must be rejected")
	}
	if _, err := Parse("SELECT MAX(light) GROUP BY temp BUCKET x EPOCH DURATION 4096"); err == nil {
		t.Fatal("non-numeric bucket must be rejected")
	}
}

func TestGroupByKey(t *testing.T) {
	g := GroupBy{Attr: field.AttrTemp, Width: 10}
	cases := []struct {
		v    float64
		want int64
	}{{0, 0}, {9.99, 0}, {10, 1}, {25, 2}, {-0.1, -1}, {-10, -1}, {-10.1, -2}}
	for _, c := range cases {
		if got := g.Key(c.v); got != c.want {
			t.Errorf("Key(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestGroupByEqual(t *testing.T) {
	a := &GroupBy{Attr: field.AttrTemp, Width: 10}
	b := &GroupBy{Attr: field.AttrTemp, Width: 10}
	c := &GroupBy{Attr: field.AttrTemp, Width: 5}
	d := &GroupBy{Attr: field.AttrLight, Width: 10}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) || a.Equal(nil) {
		t.Fatal("Equal broken")
	}
	var nilG *GroupBy
	if !nilG.Equal(nil) {
		t.Fatal("nil == nil")
	}
}

func TestGroupBySemantics(t *testing.T) {
	g1 := MustParse("SELECT MAX(light) WHERE temp > 20 GROUP BY nodeid BUCKET 4 EPOCH DURATION 4096")
	g2 := MustParse("SELECT MIN(light) WHERE temp > 20 GROUP BY nodeid BUCKET 4 EPOCH DURATION 8192")
	g3 := MustParse("SELECT MAX(light) WHERE temp > 20 GROUP BY nodeid BUCKET 8 EPOCH DURATION 4096")
	ungrouped := MustParse("SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")

	if !Rewritable(g1, g2) {
		t.Fatal("same-group aggregations must be rewritable")
	}
	if Rewritable(g1, g3) {
		t.Fatal("different bucket widths must not be rewritable")
	}
	if Rewritable(g1, ungrouped) {
		t.Fatal("grouped and ungrouped must not be rewritable")
	}

	merged := Integrate(g1, g2)
	if !merged.GroupBy.Equal(g1.GroupBy) {
		t.Fatalf("merged group = %+v", merged.GroupBy)
	}
	if !Covers(merged, g1) || !Covers(merged, g2) {
		t.Fatal("merged must cover both")
	}
	if Covers(merged, g3) || Covers(merged, ungrouped) {
		t.Fatal("merged must not cover different groupings")
	}

	// An acquisition query covers a grouped aggregate only if it acquires
	// the grouping attribute.
	acqFull := MustParse("SELECT light, nodeid WHERE temp > 20 EPOCH DURATION 4096")
	acqNoGroup := MustParse("SELECT light WHERE temp > 20 EPOCH DURATION 4096")
	if !Covers(acqFull, g1) {
		t.Fatal("acquisition with group attr must cover")
	}
	if Covers(acqNoGroup, g1) {
		t.Fatal("acquisition without group attr must not cover")
	}

	// Integrating a grouped aggregate into an acquisition acquires the
	// grouping attribute.
	mixed := Integrate(acqNoGroup, g1)
	if !mixed.HasAttr(field.AttrNodeID) {
		t.Fatalf("mixed integrate attrs = %v", mixed.Attrs)
	}
	if !Covers(mixed, g1) {
		t.Fatal("mixed integrate must cover the grouped aggregate")
	}
}

func TestGroupedAggStateIdentity(t *testing.T) {
	a := NewGroupedAggState(Agg{Max, field.AttrLight}, 1)
	b := NewGroupedAggState(Agg{Max, field.AttrLight}, 2)
	a.Add(7)
	b.Add(7)
	if a.SameValue(b) {
		t.Fatal("different groups must not share a packet slot")
	}
	c := NewGroupedAggState(Agg{Max, field.AttrLight}, 1)
	c.Add(7)
	if !a.SameValue(c) {
		t.Fatal("same group, same state must share")
	}
}

func TestSampledAttrsIncludesGroup(t *testing.T) {
	q := MustParse("SELECT MAX(light) GROUP BY temp BUCKET 5 EPOCH DURATION 4096")
	found := false
	for _, a := range q.SampledAttrs() {
		if a == field.AttrTemp {
			found = true
		}
	}
	if !found {
		t.Fatalf("sampled attrs %v must include the grouping attribute", q.SampledAttrs())
	}
}
