package query

import (
	"testing"
	"time"

	"repro/internal/field"
)

func TestParseWindowed(t *testing.T) {
	q := MustParse("SELECT WINAVG(light, 8, 2), WINMAX(temp, 4, 2) WHERE light > 100 EPOCH DURATION 4096")
	if !q.IsWindowed() || len(q.Wins) != 2 {
		t.Fatalf("wins = %v", q.Wins)
	}
	if q.Wins[0] != (Win{Op: Avg, Attr: field.AttrLight, Window: 8, Slide: 2}) {
		t.Fatalf("win[0] = %+v", q.Wins[0])
	}
	if q.ReportEvery() != 2*4096*time.Millisecond {
		t.Fatalf("report every = %v", q.ReportEvery())
	}
	// Round trip.
	back := MustParse(q.String())
	if !q.Equal(back) {
		t.Fatalf("round trip: %s vs %s", q, back)
	}
	// Default slide is 1.
	q2 := MustParse("SELECT WINSUM(humidity, 16) EPOCH DURATION 2048")
	if q2.Wins[0].Slide != 1 || q2.ReportEvery() != 2048*time.Millisecond {
		t.Fatalf("q2 = %v", q2.Wins)
	}
}

func TestParseWindowedErrors(t *testing.T) {
	cases := []string{
		"SELECT WINFROB(light, 4)",
		"SELECT WINAVG(light)",
		"SELECT WINAVG(light, 2.5)",
		"SELECT WINAVG(light, 4, 1.5)",
		"SELECT WINAVG(bogus, 4)",
		"SELECT WINAVG(light, 4), temp",               // mixed with attrs
		"SELECT WINAVG(light, 4), MAX(temp)",          // mixed with aggs
		"SELECT WINAVG(light, 4, 2), WINMAX(temp, 4)", // differing slides
		"SELECT WINAVG(light, 4), WINMAX(light, 4)",   // conflicting specs on one attr
		"SELECT WINAVG(light, 0)",
		"SELECT WINAVG(light, 4) GROUP BY temp",
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestWindowRing(t *testing.T) {
	r := NewWindowRing(3)
	if _, ok := r.Aggregate(Avg); ok {
		t.Fatal("empty ring must have no value")
	}
	r.Push(1)
	if v, ok := r.Aggregate(Avg); !ok || v != 1 {
		t.Fatalf("partial window avg = %f", v)
	}
	r.Push(2)
	r.Push(3)
	if v, _ := r.Aggregate(Avg); v != 2 {
		t.Fatalf("avg = %f", v)
	}
	r.Push(10) // evicts 1
	if v, _ := r.Aggregate(Avg); v != 5 {
		t.Fatalf("sliding avg = %f, want (2+3+10)/3", v)
	}
	if v, _ := r.Aggregate(Max); v != 10 {
		t.Fatalf("max = %f", v)
	}
	if v, _ := r.Aggregate(Min); v != 2 {
		t.Fatalf("min = %f", v)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestWindowedSemantics(t *testing.T) {
	w1 := MustParse("SELECT WINAVG(light, 8, 2) WHERE temp > 20 EPOCH DURATION 4096")
	w2 := MustParse("SELECT WINMAX(humidity, 4, 4) WHERE temp > 20 EPOCH DURATION 4096")
	w3 := MustParse("SELECT WINAVG(light, 4) WHERE temp > 20 EPOCH DURATION 4096")
	acq := MustParse("SELECT light WHERE temp > 20 EPOCH DURATION 4096")
	agg := MustParse("SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")

	if !Rewritable(w1, w2) {
		t.Fatal("compatible windowed queries must be rewritable")
	}
	if Rewritable(w1, w3) {
		t.Fatal("conflicting specs on one attribute must not be rewritable")
	}
	if Rewritable(w1, acq) || Rewritable(w1, agg) || Rewritable(acq, w1) {
		t.Fatal("windowed queries merge only with windowed queries")
	}

	m := Integrate(w1, w2)
	if !m.IsWindowed() || len(m.Wins) != 2 {
		t.Fatalf("merged = %v", m)
	}
	// Slides 2 and 4 merge to the GCD schedule 2.
	for _, w := range m.Wins {
		if w.Slide != 2 {
			t.Fatalf("merged slide = %d", w.Slide)
		}
	}
	if !Covers(m, w1) || !Covers(m, w2) {
		t.Fatal("merged must cover both (slide decimation)")
	}
	if Covers(m, w3) || Covers(acq, w1) || Covers(m, acq) {
		t.Fatal("coverage misfires")
	}
}

func TestRowAttrs(t *testing.T) {
	q := MustParse("SELECT WINAVG(light, 4), WINMAX(temp, 4) EPOCH DURATION 2048")
	got := q.RowAttrs()
	if len(got) != 2 || got[0] != field.AttrLight || got[1] != field.AttrTemp {
		t.Fatalf("row attrs = %v", got)
	}
	plain := MustParse("SELECT humidity EPOCH DURATION 2048")
	if got := plain.RowAttrs(); len(got) != 1 || got[0] != field.AttrHumidity {
		t.Fatalf("plain row attrs = %v", got)
	}
}

func TestWindowedSampledAttrs(t *testing.T) {
	q := MustParse("SELECT WINAVG(light, 4) WHERE temp > 20 EPOCH DURATION 2048")
	attrs := q.SampledAttrs()
	if len(attrs) != 2 {
		t.Fatalf("sampled = %v", attrs)
	}
}
