package query

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/field"
)

func TestEpochGCD(t *testing.T) {
	cases := []struct{ a, b, want time.Duration }{
		{2048 * time.Millisecond, 4096 * time.Millisecond, 2048 * time.Millisecond},
		{4096 * time.Millisecond, 6144 * time.Millisecond, 2048 * time.Millisecond},
		{8192 * time.Millisecond, 8192 * time.Millisecond, 8192 * time.Millisecond},
		{0, 4096 * time.Millisecond, 4096 * time.Millisecond},
		{4096 * time.Millisecond, 0, 4096 * time.Millisecond},
	}
	for _, c := range cases {
		if got := EpochGCD(c.a, c.b); got != c.want {
			t.Errorf("EpochGCD(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEpochGCDAll(t *testing.T) {
	qs := []Query{
		{Epoch: 8192 * time.Millisecond},
		{Epoch: 12288 * time.Millisecond},
		{Epoch: 20480 * time.Millisecond},
	}
	if got := EpochGCDAll(qs); got != 4096*time.Millisecond {
		t.Fatalf("got %v, want 4096ms", got)
	}
	if got := EpochGCDAll(nil); got != 0 {
		t.Fatalf("empty set GCD = %v, want 0", got)
	}
}

func TestEpochDivides(t *testing.T) {
	if !EpochDivides(2048*time.Millisecond, 4096*time.Millisecond) {
		t.Fatal("2048 divides 4096")
	}
	if EpochDivides(4096*time.Millisecond, 6144*time.Millisecond) {
		t.Fatal("4096 does not divide 6144")
	}
	if EpochDivides(0, 4096*time.Millisecond) {
		t.Fatal("zero divides nothing")
	}
}

func TestPredsCover(t *testing.T) {
	wide := []Predicate{{field.AttrLight, 0, 1000}}
	narrow := []Predicate{{field.AttrLight, 100, 200}}
	if !PredsCover(wide, narrow) {
		t.Fatal("wide should cover narrow")
	}
	if PredsCover(narrow, wide) {
		t.Fatal("narrow cannot cover wide")
	}
	// Attribute constrained only in sub: sup is looser, still covers.
	two := []Predicate{{field.AttrLight, 100, 200}, {field.AttrTemp, 0, 50}}
	if !PredsCover(narrow, two) {
		t.Fatal("sup constrained on fewer attrs should cover")
	}
	// Attribute constrained only in sup: does not cover.
	if PredsCover(two, narrow) {
		t.Fatal("sup with extra constraint cannot cover")
	}
	// Empty sup covers anything.
	if !PredsCover(nil, narrow) {
		t.Fatal("unconstrained sup covers all")
	}
}

func TestUnionPreds(t *testing.T) {
	a := []Predicate{{field.AttrLight, 100, 300}, {field.AttrTemp, 0, 50}}
	b := []Predicate{{field.AttrLight, 200, 600}}
	u := UnionPreds(a, b)
	// temp constrained only in a → dropped; light widened.
	if len(u) != 1 || u[0] != (Predicate{field.AttrLight, 100, 600}) {
		t.Fatalf("union = %v", u)
	}
	// Disjoint attributes → unconstrained.
	c := []Predicate{{field.AttrTemp, 0, 50}}
	d := []Predicate{{field.AttrLight, 0, 10}}
	if got := UnionPreds(c, d); len(got) != 0 {
		t.Fatalf("disjoint union = %v, want empty", got)
	}
	// Half-open unions collapse to tautology and are dropped.
	e := []Predicate{{field.AttrLight, math.Inf(-1), 5}}
	f := []Predicate{{field.AttrLight, 10, math.Inf(1)}}
	if got := UnionPreds(e, f); len(got) != 0 {
		t.Fatalf("tautological union = %v, want empty", got)
	}
}

func TestCoversAcquisition(t *testing.T) {
	syn := MustParse("SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	q := MustParse("SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	if !Covers(syn, q) {
		t.Fatal("syn should cover q")
	}
	// Epoch not divisible.
	q2 := MustParse("SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 6144")
	syn2 := MustParse("SELECT light WHERE light >= 0 AND light <= 600 EPOCH DURATION 4096")
	if Covers(syn2, q2) {
		t.Fatal("4096 does not divide 6144")
	}
	// Missing projection attribute.
	q3 := MustParse("SELECT temp, humidity EPOCH DURATION 4096")
	if Covers(syn, q3) {
		t.Fatal("humidity not acquired by syn")
	}
	// Predicate on attribute the syn neither filters identically nor acquires.
	synNoHum := MustParse("SELECT light, temp EPOCH DURATION 2048")
	q4 := MustParse("SELECT light WHERE humidity > 50 EPOCH DURATION 4096")
	if Covers(synNoHum, q4) {
		t.Fatal("humidity predicate not derivable")
	}
	// Identical in-network predicate needs no re-filter attribute.
	syn5 := MustParse("SELECT light WHERE humidity > 50 EPOCH DURATION 2048")
	q5 := MustParse("SELECT light WHERE humidity > 50 EPOCH DURATION 4096")
	if !Covers(syn5, q5) {
		t.Fatal("identical predicate should be derivable without acquiring the attribute")
	}
}

func TestCoversAggregationFromAcquisition(t *testing.T) {
	syn := MustParse("SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	q := MustParse("SELECT MAX(light) WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	if !Covers(syn, q) {
		t.Fatal("aggregation should be derivable from covering acquisition")
	}
	q2 := MustParse("SELECT MAX(humidity) WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	if Covers(syn, q2) {
		t.Fatal("aggregate input not acquired")
	}
}

func TestCoversAggregationFromAggregation(t *testing.T) {
	syn := MustParse("SELECT MAX(light), MIN(light) WHERE temp > 20 EPOCH DURATION 2048")
	q := MustParse("SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 8192")
	if !Covers(syn, q) {
		t.Fatal("same-predicate aggregation should be covered")
	}
	qDiffPred := MustParse("SELECT MAX(light) WHERE temp > 30 EPOCH DURATION 8192")
	if Covers(syn, qDiffPred) {
		t.Fatal("different predicates cannot be covered by an aggregation query")
	}
	qAcq := MustParse("SELECT light WHERE temp > 20 EPOCH DURATION 8192")
	if Covers(syn, qAcq) {
		t.Fatal("acquisition cannot be derived from aggregates")
	}
	qOtherOp := MustParse("SELECT AVG(light) WHERE temp > 20 EPOCH DURATION 8192")
	if Covers(syn, qOtherOp) {
		t.Fatal("AVG not in syn's agg list")
	}
}

func TestRewritable(t *testing.T) {
	acq1 := MustParse("SELECT light WHERE light > 5")
	acq2 := MustParse("SELECT temp")
	aggA := MustParse("SELECT MAX(light) WHERE temp > 20")
	aggB := MustParse("SELECT MIN(light) WHERE temp > 20")
	aggC := MustParse("SELECT MAX(light) WHERE temp > 30")
	if !Rewritable(acq1, acq2) {
		t.Fatal("acq+acq always rewritable")
	}
	if !Rewritable(acq1, aggA) || !Rewritable(aggA, acq1) {
		t.Fatal("acq+agg rewritable")
	}
	if !Rewritable(aggA, aggB) {
		t.Fatal("same-predicate aggs rewritable")
	}
	if Rewritable(aggA, aggC) {
		t.Fatal("different-predicate aggs NOT rewritable (§3.1.2)")
	}
}

func TestIntegrateAggAgg(t *testing.T) {
	a := MustParse("SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 4096")
	b := MustParse("SELECT MIN(light) WHERE temp > 20 EPOCH DURATION 8192")
	m := Integrate(a, b)
	if !m.IsAggregation() {
		t.Fatal("agg+agg must stay aggregation")
	}
	if len(m.Aggs) != 2 {
		t.Fatalf("aggs = %v", m.Aggs)
	}
	if m.Epoch != 4096*time.Millisecond {
		t.Fatalf("epoch = %v", m.Epoch)
	}
	if !Covers(m, a) || !Covers(m, b) {
		t.Fatal("integration must cover both inputs")
	}
}

func TestIntegrateAcqAcq(t *testing.T) {
	// The §3.1.3 example shape: merge widens the predicate and takes GCD.
	a := MustParse("SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	b := MustParse("SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	m := Integrate(a, b)
	if m.IsAggregation() {
		t.Fatal("acq+acq must stay acquisition")
	}
	if len(m.Preds) != 1 {
		t.Fatalf("preds = %v", m.Preds)
	}
	p := m.Preds[0]
	if !(p.Min > 100 && p.Min < 100.01) || !(p.Max < 500 && p.Max > 499.99) {
		t.Fatalf("widened pred = %v", p)
	}
	if !Covers(m, a) || !Covers(m, b) {
		t.Fatal("integration must cover both inputs")
	}
}

func TestIntegrateAcqAgg(t *testing.T) {
	acq := MustParse("SELECT light WHERE light > 100 EPOCH DURATION 4096")
	agg := MustParse("SELECT MAX(temp) WHERE light > 200 EPOCH DURATION 8192")
	m := Integrate(acq, agg)
	if m.IsAggregation() {
		t.Fatal("acq absorbs agg into an acquisition query")
	}
	// temp (the aggregate input) and light (both sides' predicate attribute)
	// must be acquired.
	if !m.HasAttr(field.AttrTemp) || !m.HasAttr(field.AttrLight) {
		t.Fatalf("attrs = %v", m.Attrs)
	}
	if !Covers(m, acq) || !Covers(m, agg) {
		t.Fatal("integration must cover both inputs")
	}
}

func TestIntegratePanicsOnNonRewritable(t *testing.T) {
	a := MustParse("SELECT MAX(light) WHERE temp > 20")
	b := MustParse("SELECT MAX(light) WHERE temp > 30")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Integrate(a, b)
}

// genQuery builds a small random query from fuzz inputs.
func genQuery(attrSel, aggSel uint8, lo, hi float64, epochMul uint8, isAgg bool) Query {
	attrs := field.AllAttrs()
	a := attrs[int(attrSel)%len(attrs)]
	pa := attrs[int(aggSel)%len(attrs)]
	if lo > hi {
		lo, hi = hi, lo
	}
	// Clamp into a plausible range to avoid degenerate infinities.
	lo = math.Mod(math.Abs(lo), 500)
	hi = lo + math.Mod(math.Abs(hi), 500)
	q := Query{
		Preds: []Predicate{{Attr: pa, Min: lo, Max: hi}},
		Epoch: time.Duration(1+int(epochMul)%12) * MinEpoch,
	}
	if isAgg {
		q.Aggs = []Agg{{Op: AggOp(1 + int(aggSel)%5), Attr: a}}
	} else {
		q.Attrs = []field.Attr{a}
	}
	return q.Normalize()
}

// Property: Integrate always produces a query covering both inputs.
func TestIntegrateCoversProperty(t *testing.T) {
	f := func(a1, g1 uint8, lo1, hi1 float64, e1 uint8, agg1 bool,
		a2, g2 uint8, lo2, hi2 float64, e2 uint8, agg2 bool) bool {
		q1 := genQuery(a1, g1, lo1, hi1, e1, agg1)
		q2 := genQuery(a2, g2, lo2, hi2, e2, agg2)
		if !Rewritable(q1, q2) {
			return true
		}
		m := Integrate(q1, q2)
		return Covers(m, q1) && Covers(m, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnionPreds admits every row admitted by either input.
func TestUnionPredsSupersetProperty(t *testing.T) {
	f := func(lo1, hi1, lo2, hi2, probe float64, sameAttr bool) bool {
		attr1 := field.AttrLight
		attr2 := field.AttrLight
		if !sameAttr {
			attr2 = field.AttrTemp
		}
		p1 := []Predicate{{attr1, math.Min(lo1, hi1), math.Max(lo1, hi1)}}
		p2 := []Predicate{{attr2, math.Min(lo2, hi2), math.Max(lo2, hi2)}}
		u := UnionPreds(p1, p2)
		row := map[field.Attr]float64{attr1: probe, attr2: probe}
		q1 := Query{Preds: p1}
		q2 := Query{Preds: p2}
		qu := Query{Preds: u}
		if q1.MatchesRow(row) || q2.MatchesRow(row) {
			return qu.MatchesRow(row)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Covers implies row-level derivability for acquisition queries —
// any row matching q also matches syn (so syn's stream contains it).
func TestCoversRowSemantics(t *testing.T) {
	f := func(a1, g1 uint8, lo1, hi1 float64, e1 uint8,
		a2, g2 uint8, lo2, hi2 float64, probe float64) bool {
		syn := genQuery(a1, g1, lo1, hi1, e1, false)
		q := genQuery(a2, g2, lo2, hi2, 1, false)
		if !Covers(syn, q) {
			return true
		}
		row := make(map[field.Attr]float64)
		for _, at := range field.AllAttrs() {
			row[at] = probe
		}
		if q.MatchesRow(row) && !syn.MatchesRow(row) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: EpochGCD is commutative, divides both inputs, and stays on the
// MinEpoch lattice.
func TestEpochGCDProperty(t *testing.T) {
	f := func(m1, m2 uint8) bool {
		a := time.Duration(1+int(m1)%32) * MinEpoch
		b := time.Duration(1+int(m2)%32) * MinEpoch
		g := EpochGCD(a, b)
		return g == EpochGCD(b, a) &&
			a%g == 0 && b%g == 0 &&
			g%MinEpoch == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
