package query

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser's robustness invariants on arbitrary input:
// it must never panic, and anything it accepts must be valid, printable,
// and re-parse to a semantically identical query.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT light",
		"SELECT light, temp WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096ms",
		"select light where 280<light<600 epoch duration 4096",
		"SELECT MAX(light), MIN(temp) WHERE temp > 20 EPOCH DURATION 8192ms",
		"SELECT AVG(light) GROUP BY temp BUCKET 10 EPOCH DURATION 4096",
		"SELECT COUNT(nodeid) WHERE nodeid BETWEEN 3 AND 9 EPOCH DURATION 2048 LIFETIME 60s",
		"SELECT humidity FROM sensors WHERE 10 <= humidity EPOCH DURATION 24576",
		"SELECT light WHERE light = 5",
		"SELECT light WHERE",
		"SELECT MAX( EPOCH",
		"sElEcT LiGhT ePoCh DuRaTiOn 2048",
		"SELECT light WHERE light > 1e3 EPOCH DURATION 4096",
		"SELECT light WHERE light > -5 EPOCH DURATION 4096",
		strings.Repeat("SELECT ", 50),
		"SELECT light \x00 WHERE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input) // must not panic
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid query %q: %v", input, verr)
		}
		printed := q.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not re-parse: %v", printed, input, err)
		}
		if !q.Equal(back) {
			t.Fatalf("round trip changed semantics:\n in:  %q\n q:   %s\n back:%s", input, q, back)
		}
		if q.Lifetime != back.Lifetime {
			t.Fatalf("lifetime lost in round trip: %v vs %v", q.Lifetime, back.Lifetime)
		}
	})
}
