package query

import (
	"time"

	"repro/internal/field"
)

// EpochGCD returns the greatest common divisor of two epoch durations. With
// all epochs multiples of MinEpoch, the result is too (§3.2.1).
func EpochGCD(a, b time.Duration) time.Duration {
	if a <= 0 {
		return b
	}
	if b <= 0 {
		return a
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// gcdInt is EpochGCD for plain ints (window slides).
func gcdInt(a, b int) int {
	if a <= 0 {
		return b
	}
	if b <= 0 {
		return a
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// EpochGCDAll folds EpochGCD over a set of queries; zero if the set is empty.
func EpochGCDAll(qs []Query) time.Duration {
	var g time.Duration
	for _, q := range qs {
		g = EpochGCD(g, q.Epoch)
	}
	return g
}

// EpochDivides reports whether inner divides outer, i.e. a query with epoch
// `outer` can be served by results produced every `inner`.
func EpochDivides(inner, outer time.Duration) bool {
	return inner > 0 && outer%inner == 0
}

// PredsEqual reports whether two normalized predicate lists are identical.
func PredsEqual(a, b []Predicate) bool {
	a, b = normalizePreds(a), normalizePreds(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PredsCover reports whether predicate list sup admits every row that sub
// admits (sup ⊇ sub). With conjunctive range predicates this holds iff every
// range in sup contains sub's range on that attribute; an attribute
// constrained only in sub is fine (sup is looser there), but an attribute
// constrained only in sup is not.
func PredsCover(sup, sub []Predicate) bool {
	sup, sub = normalizePreds(sup), normalizePreds(sub)
	for _, ps := range sup {
		found := false
		for _, pb := range sub {
			if pb.Attr == ps.Attr {
				found = true
				if !ps.Contains(pb) {
					return false
				}
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// UnionPreds returns the tightest conjunctive predicate list admitting every
// row admitted by either input (§3.1.2: "the requested ... predicates of q12
// will be the union of those of q1 and q2"). An attribute stays constrained
// only if both inputs constrain it, with the widened range; an attribute
// constrained by only one input must be dropped, because the other query
// accepts rows with any value there.
func UnionPreds(a, b []Predicate) []Predicate {
	a, b = normalizePreds(a), normalizePreds(b)
	var out []Predicate
	for _, pa := range a {
		for _, pb := range b {
			if pa.Attr == pb.Attr {
				out = append(out, pa.Union(pb))
				break
			}
		}
	}
	return normalizePreds(out)
}

// attrSubset reports whether every attribute of sub appears in sup.
func attrSubset(sub, sup []field.Attr) bool {
	for _, a := range sub {
		found := false
		for _, b := range sup {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// predDerivable reports whether the base station, given syn's result stream,
// can re-apply user query q's predicates: for each predicate of q, either
// syn applies the identical range in-network (rows arrive exactly
// pre-filtered on that attribute) or syn acquires the attribute so the base
// station can filter.
func predDerivable(syn, q Query) bool {
	for _, p := range q.Preds {
		if sp, ok := syn.PredFor(p.Attr); ok && sp == p {
			continue
		}
		if !syn.HasAttr(p.Attr) {
			return false
		}
	}
	return true
}

// Covers reports whether the synthetic query syn fully answers user query q:
// every result of q is derivable at the base station from syn's result
// stream alone (§3.1.3: BenefitRate == 1). Three cases:
//
//   - acquisition syn, acquisition q: syn's predicates admit all of q's rows,
//     syn acquires q's projection attributes, and q's predicates can be
//     re-applied at the base station;
//   - acquisition syn, aggregation q: as above with q's aggregate inputs in
//     syn's projection — the aggregate is computed from raw rows;
//   - aggregation syn, aggregation q: q's aggregates are among syn's and the
//     predicates are identical (an aggregate over a different row set cannot
//     be derived from an aggregate, per the §3.1.2 correctness constraint).
//
// In every case q's epoch must be a multiple of syn's so that q's epochs are
// a subsequence of syn's.
func Covers(syn, q Query) bool {
	if !EpochDivides(syn.Epoch, q.Epoch) {
		return false
	}
	if syn.IsWindowed() || q.IsWindowed() {
		// A windowed value is derived from a node's private sample history;
		// it is only coverable by a windowed synthetic query running the
		// exact same windows on the exact same rows and schedule.
		if !syn.IsWindowed() || !q.IsWindowed() {
			return false
		}
		if syn.Epoch != q.Epoch || !PredsEqual(syn.Preds, q.Preds) {
			return false
		}
		for _, w := range q.Wins {
			found := false
			for _, sw := range syn.Wins {
				// Same computation, and q's reporting instants are a
				// subsequence of syn's (its slide divides q's).
				if sw.Op == w.Op && sw.Attr == w.Attr && sw.Window == w.Window &&
					w.Slide%sw.Slide == 0 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if syn.IsAggregation() {
		if !q.IsAggregation() {
			return false
		}
		if !PredsEqual(syn.Preds, q.Preds) {
			return false
		}
		// Grouped partials cannot be re-bucketed: the group specs must
		// match exactly.
		if !syn.GroupBy.Equal(q.GroupBy) {
			return false
		}
		for _, a := range q.Aggs {
			if !syn.HasAgg(a) {
				return false
			}
		}
		return true
	}
	// syn is an acquisition query.
	if !PredsCover(syn.Preds, q.Preds) {
		return false
	}
	if !predDerivable(syn, q) {
		return false
	}
	if q.IsAggregation() {
		if !attrSubset(q.AggAttrs(), syn.Attrs) {
			return false
		}
		// A grouped aggregate needs the grouping attribute's raw value.
		if q.GroupBy != nil && !syn.HasAttr(q.GroupBy.Attr) {
			return false
		}
		return true
	}
	return attrSubset(q.Attrs, syn.Attrs)
}

// Rewritable reports whether two queries may be integrated into one
// synthetic query at all (§3.1.3: the Beneficial function "first identifies
// whether two queries are rewritable based on semantic correctness
// constraints"). Two aggregation queries are rewritable only with identical
// predicates; any combination involving an acquisition query is rewritable,
// because raw rows can always be widened to cover both.
func Rewritable(a, b Query) bool {
	if a.IsWindowed() || b.IsWindowed() {
		// Windowed queries merge only with windowed queries over the same
		// rows and schedule, and only when no attribute carries two
		// different window specs (see query.Win).
		return a.IsWindowed() && b.IsWindowed() &&
			a.Epoch == b.Epoch &&
			PredsEqual(a.Preds, b.Preds) &&
			winsCompatible(a.Wins, b.Wins)
	}
	if a.IsAggregation() && b.IsAggregation() {
		return PredsEqual(a.Preds, b.Preds) && a.GroupBy.Equal(b.GroupBy)
	}
	return true
}

// Integrate returns the synthetic query covering both inputs, per §3.1.2:
// the requested attributes and predicates are unions, the epoch duration is
// the GCD. Two aggregation queries merge into one aggregation query (their
// predicates are identical by Rewritable); any mix involving an acquisition
// query merges into an acquisition query that additionally acquires both
// sides' aggregate inputs and predicate attributes, so every constituent
// remains derivable at the base station after the predicate widening.
//
// The returned query carries no ID; callers assign one. Integrate panics if
// the pair is not Rewritable — the optimizer checks first.
func Integrate(a, b Query) Query {
	if !Rewritable(a, b) {
		panic("query: Integrate on non-rewritable pair")
	}
	if a.IsWindowed() && b.IsWindowed() {
		merged := Query{
			Wins:  dedupWins(append(append([]Win(nil), a.Wins...), b.Wins...)),
			Preds: normalizePreds(a.Preds),
			Epoch: a.Epoch, // identical by Rewritable
		}
		// Report on the densest schedule so every contributor's reporting
		// instants are a subsequence... slides are per-win; a merged query
		// needs one shared slide: take the GCD of the contributors' slides.
		slide := gcdInt(a.Wins[0].Slide, b.Wins[0].Slide)
		for i := range merged.Wins {
			merged.Wins[i].Slide = slide
		}
		return merged.Normalize()
	}
	if a.IsAggregation() && b.IsAggregation() {
		return Query{
			Aggs:    dedupAggs(append(append([]Agg(nil), a.Aggs...), b.Aggs...)),
			Preds:   normalizePreds(a.Preds),
			Epoch:   EpochGCD(a.Epoch, b.Epoch),
			GroupBy: a.GroupBy, // identical by Rewritable
		}.Normalize()
	}
	attrs := make([]field.Attr, 0, len(a.Attrs)+len(b.Attrs)+4)
	attrs = append(attrs, a.Attrs...)
	attrs = append(attrs, b.Attrs...)
	attrs = append(attrs, a.AggAttrs()...)
	attrs = append(attrs, b.AggAttrs()...)
	attrs = append(attrs, a.PredAttrs()...)
	attrs = append(attrs, b.PredAttrs()...)
	for _, q := range []Query{a, b} {
		if q.GroupBy != nil {
			attrs = append(attrs, q.GroupBy.Attr)
		}
	}
	return Query{
		Attrs: dedupAttrs(attrs),
		Preds: UnionPreds(a.Preds, b.Preds),
		Epoch: EpochGCD(a.Epoch, b.Epoch),
	}.Normalize()
}
