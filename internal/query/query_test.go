package query

import (
	"math"
	"testing"
	"time"

	"repro/internal/field"
)

func TestValidate(t *testing.T) {
	ok := Query{Attrs: []field.Attr{field.AttrLight}, Epoch: MinEpoch}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	cases := []struct {
		name string
		q    Query
	}{
		{"empty select", Query{Epoch: MinEpoch}},
		{"both lists", Query{Attrs: []field.Attr{field.AttrLight}, Aggs: []Agg{{Max, field.AttrTemp}}, Epoch: MinEpoch}},
		{"zero epoch", Query{Attrs: []field.Attr{field.AttrLight}}},
		{"unaligned epoch", Query{Attrs: []field.Attr{field.AttrLight}, Epoch: 3000 * time.Millisecond}},
		{"empty predicate", Query{Attrs: []field.Attr{field.AttrLight}, Epoch: MinEpoch,
			Preds: []Predicate{{field.AttrLight, 10, 5}}}},
		{"dup pred attr", Query{Attrs: []field.Attr{field.AttrLight}, Epoch: MinEpoch,
			Preds: []Predicate{{field.AttrLight, 0, 5}, {field.AttrLight, 1, 6}}}},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNormalizeMergesPredicates(t *testing.T) {
	q := Query{
		Attrs: []field.Attr{field.AttrTemp, field.AttrLight, field.AttrTemp},
		Preds: []Predicate{
			{field.AttrLight, 0, 500},
			{field.AttrLight, 100, 900},
		},
		Epoch: MinEpoch,
	}
	n := q.Normalize()
	if len(n.Attrs) != 2 || n.Attrs[0] != field.AttrLight || n.Attrs[1] != field.AttrTemp {
		t.Fatalf("attrs = %v", n.Attrs)
	}
	if len(n.Preds) != 1 {
		t.Fatalf("preds = %v", n.Preds)
	}
	if n.Preds[0] != (Predicate{field.AttrLight, 100, 500}) {
		t.Fatalf("intersection wrong: %v", n.Preds[0])
	}
	// Original untouched.
	if len(q.Preds) != 2 {
		t.Fatal("Normalize mutated receiver")
	}
}

func TestNormalizeDropsTautology(t *testing.T) {
	q := Query{
		Attrs: []field.Attr{field.AttrLight},
		Preds: []Predicate{{field.AttrLight, math.Inf(-1), math.Inf(1)}},
		Epoch: MinEpoch,
	}
	if got := q.Normalize().Preds; len(got) != 0 {
		t.Fatalf("tautology not dropped: %v", got)
	}
}

func TestMatchesRow(t *testing.T) {
	q := MustParse("SELECT light WHERE light >= 100 AND light <= 200 AND temp > 50")
	cases := []struct {
		row  map[field.Attr]float64
		want bool
	}{
		{map[field.Attr]float64{field.AttrLight: 150, field.AttrTemp: 60}, true},
		{map[field.Attr]float64{field.AttrLight: 150, field.AttrTemp: 50}, false}, // strict
		{map[field.Attr]float64{field.AttrLight: 99, field.AttrTemp: 60}, false},
		{map[field.Attr]float64{field.AttrLight: 100, field.AttrTemp: 51}, true}, // inclusive
		{map[field.Attr]float64{field.AttrLight: 150}, false},                    // missing attr
	}
	for i, c := range cases {
		if got := q.MatchesRow(c.row); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestSampledAttrs(t *testing.T) {
	q := MustParse("SELECT MAX(light) WHERE temp > 10 EPOCH DURATION 4096")
	got := q.SampledAttrs()
	want := []field.Attr{field.AttrLight, field.AttrTemp}
	if len(got) != len(want) {
		t.Fatalf("sampled = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampled = %v, want %v", got, want)
		}
	}
}

func TestQueryEqual(t *testing.T) {
	a := MustParse("SELECT light, temp WHERE light > 5 EPOCH DURATION 4096")
	b := MustParse("select temp, light where 5 < light epoch duration 4096ms")
	if !a.Equal(b) {
		t.Fatal("semantically identical queries not Equal")
	}
	c := MustParse("SELECT light, temp WHERE light > 5 EPOCH DURATION 2048")
	if a.Equal(c) {
		t.Fatal("different epochs compared Equal")
	}
}

func TestClone(t *testing.T) {
	a := MustParse("SELECT light WHERE light > 5")
	b := a.Clone()
	b.Preds[0].Min = 99
	if a.Preds[0].Min == 99 {
		t.Fatal("Clone shares predicate storage")
	}
}

func TestAggStateMaxMin(t *testing.T) {
	s := NewAggState(Agg{Max, field.AttrLight})
	if _, ok := s.Result(); ok {
		t.Fatal("empty state should have no result")
	}
	s.Add(5)
	s.Add(9)
	s.Add(2)
	if v, ok := s.Result(); !ok || v != 9 {
		t.Fatalf("max = %f, want 9", v)
	}
	s.Agg.Op = Min
	if v, _ := s.Result(); v != 2 {
		t.Fatalf("min = %f, want 2", v)
	}
}

func TestAggStateSumCountAvg(t *testing.T) {
	s := NewAggState(Agg{Avg, field.AttrTemp})
	for _, v := range []float64{10, 20, 30} {
		s.Add(v)
	}
	if v, _ := s.Result(); v != 20 {
		t.Fatalf("avg = %f, want 20", v)
	}
	s.Agg.Op = Sum
	if v, _ := s.Result(); v != 60 {
		t.Fatalf("sum = %f, want 60", v)
	}
	s.Agg.Op = Count
	if v, _ := s.Result(); v != 3 {
		t.Fatalf("count = %f, want 3", v)
	}
}

func TestAggStateMergeEqualsFlat(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for _, op := range []AggOp{Max, Min, Sum, Count, Avg} {
		flat := NewAggState(Agg{op, field.AttrLight})
		for _, v := range vals {
			flat.Add(v)
		}
		left := NewAggState(Agg{op, field.AttrLight})
		right := NewAggState(Agg{op, field.AttrLight})
		for i, v := range vals {
			if i%2 == 0 {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(right)
		fv, _ := flat.Result()
		mv, _ := left.Result()
		if fv != mv {
			t.Errorf("%v: merged %f != flat %f", op, mv, fv)
		}
	}
}

func TestAggStateSameValue(t *testing.T) {
	a := NewAggState(Agg{Max, field.AttrLight})
	b := NewAggState(Agg{Max, field.AttrLight})
	a.Add(5)
	a.Add(7)
	b.Add(5)
	b.Add(7)
	if !a.SameValue(b) {
		t.Fatal("identical partial states must be shareable")
	}
	// Same final MAX but different contributing sets must NOT share (the
	// Figure 2 walk-through: node B sends q_i and q_j separately).
	c := NewAggState(Agg{Max, field.AttrLight})
	c.Add(7)
	if a.SameValue(c) {
		t.Fatal("differing contributing sets must not be shareable")
	}
	// Same final AVG but different components is NOT shareable.
	f := NewAggState(Agg{Avg, field.AttrLight})
	g := NewAggState(Agg{Avg, field.AttrLight})
	f.Add(10)
	g.Add(5)
	g.Add(15)
	if f.SameValue(g) {
		t.Fatal("AVG with different counts must not be shareable")
	}
	// Different operators never share.
	e := NewAggState(Agg{Min, field.AttrLight})
	e.Add(7)
	if a.SameValue(e) {
		t.Fatal("different aggregates must not be shareable")
	}
	// Two empty states of the same aggregate share trivially.
	x, y := NewAggState(Agg{Max, field.AttrTemp}), NewAggState(Agg{Max, field.AttrTemp})
	if !x.SameValue(y) {
		t.Fatal("empty states of same aggregate should be shareable")
	}
}

func TestPredicateBasics(t *testing.T) {
	p := Predicate{field.AttrLight, 10, 20}
	if !p.Matches(10) || !p.Matches(20) || p.Matches(9.999) || p.Matches(20.001) {
		t.Fatal("inclusive range broken")
	}
	if p.Empty() {
		t.Fatal("non-empty range reported Empty")
	}
	if !(Predicate{field.AttrLight, 5, 1}).Empty() {
		t.Fatal("inverted range should be Empty")
	}
	q := Predicate{field.AttrLight, 12, 18}
	if !p.Contains(q) || q.Contains(p) {
		t.Fatal("Contains broken")
	}
	r := Predicate{field.AttrTemp, 12, 18}
	if p.Contains(r) {
		t.Fatal("Contains must require same attribute")
	}
	u := p.Union(Predicate{field.AttrLight, 15, 30})
	if u.Min != 10 || u.Max != 30 {
		t.Fatalf("union = %v", u)
	}
}
