package query

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/field"
)

func TestParseAcquisition(t *testing.T) {
	q, err := Parse("SELECT light, temp FROM sensors WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096ms")
	if err != nil {
		t.Fatal(err)
	}
	if q.IsAggregation() {
		t.Fatal("acquisition query classified as aggregation")
	}
	if len(q.Attrs) != 2 || q.Attrs[0] != field.AttrLight || q.Attrs[1] != field.AttrTemp {
		t.Fatalf("attrs = %v", q.Attrs)
	}
	if q.Epoch != 4096*time.Millisecond {
		t.Fatalf("epoch = %v", q.Epoch)
	}
	if len(q.Preds) != 1 || q.Preds[0] != (Predicate{field.AttrLight, 100, 300}) {
		t.Fatalf("preds = %v", q.Preds)
	}
}

func TestParsePaperExample(t *testing.T) {
	// §3.1.3 example, with epochs scaled to legal multiples of 2048ms.
	q, err := Parse("select light where 280<light<600 epoch duration 4096")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 {
		t.Fatalf("preds = %v", q.Preds)
	}
	p := q.Preds[0]
	if p.Attr != field.AttrLight {
		t.Fatalf("pred attr = %v", p.Attr)
	}
	// Strict bounds nudged one ULP inward.
	if !(p.Min > 280 && p.Min < 280.001) || !(p.Max < 600 && p.Max > 599.999) {
		t.Fatalf("pred = %+v", p)
	}
	if p.Matches(280) || !p.Matches(280.0001) || p.Matches(600) || !p.Matches(599.9999) {
		t.Fatal("strictness wrong")
	}
}

func TestParseAggregation(t *testing.T) {
	q, err := Parse("SELECT MAX(light), MIN(temp) WHERE temp > 20 EPOCH DURATION 8192ms")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsAggregation() {
		t.Fatal("not classified as aggregation")
	}
	if len(q.Aggs) != 2 {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	// Normalized order: by attribute then op; light < temp.
	if q.Aggs[0] != (Agg{Max, field.AttrLight}) || q.Aggs[1] != (Agg{Min, field.AttrTemp}) {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	if q.Epoch != 8192*time.Millisecond {
		t.Fatalf("epoch = %v", q.Epoch)
	}
}

func TestParseBetween(t *testing.T) {
	q, err := Parse("SELECT light WHERE light BETWEEN 100 AND 300 AND temp > 5 EPOCH DURATION 2048")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %v", q.Preds)
	}
	if q.Preds[0] != (Predicate{field.AttrLight, 100, 300}) {
		t.Fatalf("between pred = %v", q.Preds[0])
	}
}

func TestParseDefaultEpoch(t *testing.T) {
	q, err := Parse("SELECT light")
	if err != nil {
		t.Fatal(err)
	}
	if q.Epoch != MinEpoch {
		t.Fatalf("default epoch = %v, want %v", q.Epoch, MinEpoch)
	}
}

func TestParseEquality(t *testing.T) {
	q, err := Parse("SELECT light WHERE nodeid = 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0] != (Predicate{field.AttrNodeID, 5, 5}) {
		t.Fatalf("pred = %v", q.Preds[0])
	}
}

func TestParseFlippedComparison(t *testing.T) {
	q1 := MustParse("SELECT light WHERE 100 <= light")
	q2 := MustParse("SELECT light WHERE light >= 100")
	if !q1.Equal(q2) {
		t.Fatal("flipped comparison differs")
	}
	q3 := MustParse("SELECT light WHERE 100 > light")
	q4 := MustParse("SELECT light WHERE light < 100")
	if !q3.Equal(q4) {
		t.Fatal("flipped strict comparison differs")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"FOO light",
		"SELECT bogus",
		"SELECT light WHERE",
		"SELECT light WHERE light",
		"SELECT light WHERE light >",
		"SELECT light WHERE light > x",
		"SELECT light EPOCH",
		"SELECT light EPOCH DURATION",
		"SELECT light EPOCH DURATION abc",
		"SELECT light EPOCH DURATION 3000", // not multiple of 2048
		"SELECT light EPOCH DURATION 0",
		"SELECT FROB(light)",
		"SELECT MAX(light",
		"SELECT MAX()",
		"SELECT light WHERE light BETWEEN 5",
		"SELECT light WHERE light BETWEEN 5 AND",
		"SELECT light WHERE light < 5 GARBAGE",
		"SELECT light WHERE light > 10 AND light < 5", // empty range
		"SELECT light WHERE light @ 5",
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	q1 := MustParse("select max(LIGHT) from SENSORS where TEMP >= 10 epoch duration 2048MS")
	q2 := MustParse("SELECT MAX(light) WHERE temp >= 10 EPOCH DURATION 2048ms")
	if !q1.Equal(q2) {
		t.Fatal("case sensitivity broke parsing")
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT light EPOCH DURATION 2048ms",
		"SELECT light, temp WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096ms",
		"SELECT MAX(light), MIN(light), MAX(temp) WHERE temp > 20 AND humidity < 80 EPOCH DURATION 8192ms",
		"SELECT nodeid, light WHERE nodeid = 7 EPOCH DURATION 24576ms",
		"SELECT light WHERE 280 < light AND light < 600 EPOCH DURATION 4096ms",
		"SELECT COUNT(nodeid) EPOCH DURATION 6144ms",
		"SELECT AVG(voltage) WHERE voltage <= 3 EPOCH DURATION 2048ms",
	}
	for _, s := range cases {
		q := MustParse(s)
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q (printed %q): %v", s, q.String(), err)
		}
		if !q.Equal(back) {
			t.Fatalf("round trip changed query:\n  in:  %s\n  out: %s", q, back)
		}
	}
}

func TestStringHalfOpenPredicates(t *testing.T) {
	q := MustParse("SELECT light WHERE light >= 10")
	s := q.String()
	if strings.Contains(s, "Inf") {
		t.Fatalf("printed form leaks Inf: %s", s)
	}
	back := MustParse(s)
	if !q.Equal(back) {
		t.Fatalf("half-open round trip broken: %s vs %s", q, back)
	}
	if !math.IsInf(back.Preds[0].Max, 1) {
		t.Fatal("upper bound should remain +Inf")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on invalid input")
		}
	}()
	MustParse("NOT A QUERY")
}

func TestParseLifetime(t *testing.T) {
	q, err := Parse("SELECT light EPOCH DURATION 4096 LIFETIME 60s")
	if err != nil {
		t.Fatal(err)
	}
	if q.Lifetime != 60*time.Second {
		t.Fatalf("lifetime = %v", q.Lifetime)
	}
	back := MustParse(q.String())
	if back.Lifetime != q.Lifetime {
		t.Fatalf("lifetime round trip: %v vs %v", back.Lifetime, q.Lifetime)
	}
	// Lifetime is lifecycle metadata: Equal ignores it.
	noLife := MustParse("SELECT light EPOCH DURATION 4096")
	if !q.Equal(noLife) {
		t.Fatal("Equal must ignore lifetime")
	}
	// Shorter than one epoch is rejected.
	if _, err := Parse("SELECT light EPOCH DURATION 4096 LIFETIME 2048"); err == nil {
		t.Fatal("lifetime < epoch must be rejected")
	}
	if err := (Query{Attrs: q.Attrs, Epoch: q.Epoch, Lifetime: -time.Second}).Validate(); err == nil {
		t.Fatal("negative lifetime must be rejected")
	}
}
