// Package query defines the declarative query model of TinyDB that TTMQO
// optimizes: SELECT-FROM-WHERE with selection, projection and aggregation,
// plus an EPOCH DURATION clause giving the sampling period (§2 of the paper).
//
// A query is either a *data acquisition* query (it retrieves attribute
// values from every node whose readings satisfy the predicates) or a *data
// aggregation* query (it retrieves aggregates of an attribute over those
// nodes); for a single user query exactly one of the two lists is non-empty.
// Predicates are per-attribute value ranges ⟨attribute, min, max⟩ combined
// conjunctively, matching the paper's data structures (§3.1.1).
//
// The package also provides the semantic algebra the base-station optimizer
// relies on: coverage tests, the conjunctive-superset predicate union,
// epoch-duration arithmetic, and partial-aggregate state for in-network
// aggregation.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/field"
	"repro/internal/sim"
	"repro/internal/topology"
)

// MinEpoch is the smallest allowed epoch duration (§3.2.1: 2048 ms); every
// epoch duration must be a positive multiple of it.
const MinEpoch = 2048 * time.Millisecond

// ID identifies a user or synthetic query.
type ID int

// AggOp is an aggregation operator.
type AggOp uint8

// Aggregation operators. The paper's experiments use MAX and MIN; SUM,
// COUNT and AVG round out the usual TinyDB set.
const (
	Max AggOp = iota + 1
	Min
	Sum
	Count
	Avg
)

// String returns the SQL spelling of the operator.
func (op AggOp) String() string {
	switch op {
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(op))
	}
}

// ParseAggOp converts a SQL operator name (any case) to an AggOp.
func ParseAggOp(s string) (AggOp, error) {
	switch strings.ToUpper(s) {
	case "MAX":
		return Max, nil
	case "MIN":
		return Min, nil
	case "SUM":
		return Sum, nil
	case "COUNT":
		return Count, nil
	case "AVG":
		return Avg, nil
	default:
		return 0, fmt.Errorf("query: unknown aggregate %q", s)
	}
}

// Agg is one ⟨operator, attribute⟩ entry of a query's agg_list.
type Agg struct {
	Op   AggOp
	Attr field.Attr
}

// String returns e.g. "MAX(light)".
func (a Agg) String() string { return fmt.Sprintf("%s(%s)", a.Op, a.Attr) }

// Predicate is a closed value range on one attribute: Min ≤ value ≤ Max.
// Open-ended sides use ±Inf. Strict comparisons are represented by nudging
// the bound one ULP inward, which keeps the predicate algebra purely
// interval-based.
type Predicate struct {
	Attr field.Attr
	Min  float64
	Max  float64
}

// Matches reports whether v satisfies the predicate.
func (p Predicate) Matches(v float64) bool { return v >= p.Min && v <= p.Max }

// Empty reports whether no value can satisfy the predicate.
func (p Predicate) Empty() bool { return p.Min > p.Max }

// Contains reports whether p's range contains q's range (same attribute
// required): every value satisfying q satisfies p.
func (p Predicate) Contains(q Predicate) bool {
	return p.Attr == q.Attr && p.Min <= q.Min && p.Max >= q.Max
}

// Union returns the smallest single range covering both predicates
// (same attribute required).
func (p Predicate) Union(q Predicate) Predicate {
	return Predicate{Attr: p.Attr, Min: math.Min(p.Min, q.Min), Max: math.Max(p.Max, q.Max)}
}

// String renders the predicate as one or two SQL comparisons.
func (p Predicate) String() string {
	switch {
	case math.IsInf(p.Min, -1) && math.IsInf(p.Max, 1):
		return fmt.Sprintf("%s IS ANY", p.Attr) // never produced by the parser
	case math.IsInf(p.Min, -1):
		return fmt.Sprintf("%s <= %g", p.Attr, p.Max)
	case math.IsInf(p.Max, 1):
		return fmt.Sprintf("%s >= %g", p.Attr, p.Min)
	case p.Min == p.Max:
		return fmt.Sprintf("%s = %g", p.Attr, p.Min)
	default:
		return fmt.Sprintf("%s >= %g AND %s <= %g", p.Attr, p.Min, p.Attr, p.Max)
	}
}

// Query is a parsed, normalized continuous query.
type Query struct {
	ID    ID
	Attrs []field.Attr // projection list of an acquisition query
	Aggs  []Agg        // agg_list of an aggregation query
	Wins  []Win        // windowed (temporal) aggregates, node-local
	Preds []Predicate  // conjunctive; normalized to at most one per attribute
	Epoch time.Duration
	// Lifetime, when positive, auto-terminates the query that long after
	// admission (TinyDB's LIFETIME clause). It is lifecycle metadata, not
	// part of the query's data requirement: Equal ignores it and synthetic
	// queries never carry one.
	Lifetime time.Duration
	// GroupBy, when non-nil, partitions an aggregation query's results
	// into value buckets of one attribute (TinyDB's GROUP BY clause).
	GroupBy *GroupBy
}

// GroupBy buckets an aggregation by ⌊value/Width⌋ of one attribute.
type GroupBy struct {
	Attr  field.Attr
	Width float64
}

// Key returns the bucket of a reading.
func (g GroupBy) Key(v float64) int64 { return int64(math.Floor(v / g.Width)) }

// Equal reports whether two optional group specs are the same.
func (g *GroupBy) Equal(o *GroupBy) bool {
	if g == nil || o == nil {
		return g == o
	}
	return g.Attr == o.Attr && g.Width == o.Width
}

// String returns the SQL form, e.g. "GROUP BY temp BUCKET 10".
func (g GroupBy) String() string {
	if g.Width == 1 {
		return fmt.Sprintf("GROUP BY %s", g.Attr)
	}
	return fmt.Sprintf("GROUP BY %s BUCKET %g", g.Attr, g.Width)
}

// IsAggregation reports whether the query computes aggregates rather than
// returning raw rows.
func (q Query) IsAggregation() bool { return len(q.Aggs) > 0 }

// Validate checks the structural invariants of a user query.
func (q Query) Validate() error {
	if len(q.Attrs) == 0 && len(q.Aggs) == 0 && len(q.Wins) == 0 {
		return fmt.Errorf("query %d: empty select list", q.ID)
	}
	if len(q.Attrs) > 0 && len(q.Aggs) > 0 {
		return fmt.Errorf("query %d: both attribute and aggregate lists set", q.ID)
	}
	if err := q.validateWins(); err != nil {
		return err
	}
	if q.Epoch <= 0 {
		return fmt.Errorf("query %d: non-positive epoch %v", q.ID, q.Epoch)
	}
	if q.Epoch%MinEpoch != 0 {
		return fmt.Errorf("query %d: epoch %v not a multiple of %v", q.ID, q.Epoch, MinEpoch)
	}
	if q.Lifetime < 0 {
		return fmt.Errorf("query %d: negative lifetime %v", q.ID, q.Lifetime)
	}
	if q.Lifetime > 0 && q.Lifetime < q.Epoch {
		return fmt.Errorf("query %d: lifetime %v shorter than one epoch %v", q.ID, q.Lifetime, q.Epoch)
	}
	if q.GroupBy != nil {
		if len(q.Aggs) == 0 {
			return fmt.Errorf("query %d: GROUP BY requires aggregation", q.ID)
		}
		if q.GroupBy.Width <= 0 {
			return fmt.Errorf("query %d: non-positive GROUP BY bucket %g", q.ID, q.GroupBy.Width)
		}
	}
	seen := make(map[field.Attr]bool, len(q.Preds))
	for _, p := range q.Preds {
		if p.Empty() {
			return fmt.Errorf("query %d: unsatisfiable predicate on %s", q.ID, p.Attr)
		}
		if seen[p.Attr] {
			return fmt.Errorf("query %d: duplicate predicate attribute %s", q.ID, p.Attr)
		}
		seen[p.Attr] = true
	}
	return nil
}

// Normalize sorts the attribute, aggregate and predicate lists, removes
// duplicates and intersects multiple predicates on the same attribute. It
// returns a new Query; the receiver is unchanged.
func (q Query) Normalize() Query {
	out := q
	out.Attrs = dedupAttrs(q.Attrs)
	out.Aggs = dedupAggs(q.Aggs)
	out.Wins = dedupWins(q.Wins)
	out.Preds = normalizePreds(q.Preds)
	return out
}

func dedupAttrs(attrs []field.Attr) []field.Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]field.Attr, 0, len(attrs))
	seen := make(map[field.Attr]bool, len(attrs))
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupAggs(aggs []Agg) []Agg {
	if len(aggs) == 0 {
		return nil
	}
	out := make([]Agg, 0, len(aggs))
	seen := make(map[Agg]bool, len(aggs))
	for _, a := range aggs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Op < out[j].Op
	})
	return out
}

func normalizePreds(preds []Predicate) []Predicate {
	if len(preds) == 0 {
		return nil
	}
	byAttr := make(map[field.Attr]Predicate, len(preds))
	for _, p := range preds {
		if cur, ok := byAttr[p.Attr]; ok {
			// Conjunction of two ranges on the same attribute: intersect.
			byAttr[p.Attr] = Predicate{
				Attr: p.Attr,
				Min:  math.Max(cur.Min, p.Min),
				Max:  math.Min(cur.Max, p.Max),
			}
		} else {
			byAttr[p.Attr] = p
		}
	}
	out := make([]Predicate, 0, len(byAttr))
	for _, p := range byAttr {
		// Drop tautologies (both sides unbounded): they constrain nothing
		// and would otherwise leak ±Inf into the printed form.
		if math.IsInf(p.Min, -1) && math.IsInf(p.Max, 1) {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}

// MatchesRow reports whether a reading vector satisfies every predicate.
// Attributes missing from the row fail the corresponding predicate.
func (q Query) MatchesRow(values map[field.Attr]float64) bool {
	for _, p := range q.Preds {
		v, ok := values[p.Attr]
		if !ok || !p.Matches(v) {
			return false
		}
	}
	return true
}

// PredFor returns the predicate on attribute a, if any.
func (q Query) PredFor(a field.Attr) (Predicate, bool) {
	for _, p := range q.Preds {
		if p.Attr == a {
			return p, true
		}
	}
	return Predicate{}, false
}

// PredAttrs returns the attributes constrained by the query's predicates.
func (q Query) PredAttrs() []field.Attr {
	attrs := make([]field.Attr, 0, len(q.Preds))
	for _, p := range q.Preds {
		attrs = append(attrs, p.Attr)
	}
	return attrs
}

// AggAttrs returns the attributes aggregated by the query.
func (q Query) AggAttrs() []field.Attr {
	attrs := make([]field.Attr, 0, len(q.Aggs))
	for _, a := range q.Aggs {
		attrs = append(attrs, a.Attr)
	}
	return dedupAttrs(attrs)
}

// HasAttr reports whether a is in the acquisition list.
func (q Query) HasAttr(a field.Attr) bool {
	for _, x := range q.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// HasAgg reports whether the aggregate is in the agg list.
func (q Query) HasAgg(a Agg) bool {
	for _, x := range q.Aggs {
		if x == a {
			return true
		}
	}
	return false
}

// SampledAttrs returns every attribute the query needs a node to sample:
// projection attributes, aggregate inputs, predicate attributes and the
// grouping attribute.
func (q Query) SampledAttrs() []field.Attr {
	attrs := make([]field.Attr, 0, len(q.Attrs)+len(q.Aggs)+len(q.Preds)+1)
	attrs = append(attrs, q.Attrs...)
	for _, a := range q.Aggs {
		attrs = append(attrs, a.Attr)
	}
	attrs = append(attrs, q.PredAttrs()...)
	for _, w := range q.Wins {
		attrs = append(attrs, w.Attr)
	}
	if q.GroupBy != nil {
		attrs = append(attrs, q.GroupBy.Attr)
	}
	return dedupAttrs(attrs)
}

// Clone returns a deep copy (the list fields are otherwise shared).
func (q Query) Clone() Query {
	out := q
	out.Attrs = append([]field.Attr(nil), q.Attrs...)
	out.Aggs = append([]Agg(nil), q.Aggs...)
	out.Wins = append([]Win(nil), q.Wins...)
	out.Preds = append([]Predicate(nil), q.Preds...)
	if q.GroupBy != nil {
		g := *q.GroupBy
		out.GroupBy = &g
	}
	return out
}

// Equal reports whether two queries are semantically identical up to
// normalization (IDs are ignored).
func (q Query) Equal(o Query) bool {
	a, b := q.Normalize(), o.Normalize()
	if a.Epoch != b.Epoch ||
		!a.GroupBy.Equal(b.GroupBy) ||
		len(a.Attrs) != len(b.Attrs) ||
		len(a.Aggs) != len(b.Aggs) ||
		len(a.Wins) != len(b.Wins) ||
		len(a.Preds) != len(b.Preds) {
		return false
	}
	for i := range a.Wins {
		if a.Wins[i] != b.Wins[i] {
			return false
		}
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Aggs {
		if a.Aggs[i] != b.Aggs[i] {
			return false
		}
	}
	for i := range a.Preds {
		if a.Preds[i] != b.Preds[i] {
			return false
		}
	}
	return true
}

// Row is one tuple of an acquisition query's result stream.
type Row struct {
	Node   topology.NodeID
	Time   sim.Time
	Values map[field.Attr]float64
}

// AggState is a mergeable partial aggregate, the "partial state record" of
// in-network aggregation: internal nodes merge children's states with their
// own reading and forward a single state upward (§3.2.2).
type AggState struct {
	Agg Agg
	// Group is the GROUP BY bucket this partial belongs to (0 for
	// ungrouped queries). Partials merge and share only within a group.
	Group int64
	Sum   float64
	Count int64
	MinV  float64
	MaxV  float64
}

// NewAggState returns an empty state for the aggregate.
func NewAggState(a Agg) AggState {
	return AggState{Agg: a, MinV: math.Inf(1), MaxV: math.Inf(-1)}
}

// NewGroupedAggState returns an empty state for one bucket of a grouped
// aggregate.
func NewGroupedAggState(a Agg, group int64) AggState {
	s := NewAggState(a)
	s.Group = group
	return s
}

// Add folds one reading into the state.
func (s *AggState) Add(v float64) {
	s.Sum += v
	s.Count++
	s.MinV = math.Min(s.MinV, v)
	s.MaxV = math.Max(s.MaxV, v)
}

// Merge folds another partial state (for the same aggregate) into s.
func (s *AggState) Merge(o AggState) {
	s.Sum += o.Sum
	s.Count += o.Count
	s.MinV = math.Min(s.MinV, o.MinV)
	s.MaxV = math.Max(s.MaxV, o.MaxV)
}

// Valid reports whether any reading has been folded in.
func (s AggState) Valid() bool { return s.Count > 0 }

// Result returns the final aggregate value; ok is false for an empty state
// (no node satisfied the predicates this epoch).
func (s AggState) Result() (v float64, ok bool) {
	if s.Count == 0 {
		return 0, false
	}
	switch s.Agg.Op {
	case Max:
		return s.MaxV, true
	case Min:
		return s.MinV, true
	case Sum:
		return s.Sum, true
	case Count:
		return float64(s.Count), true
	case Avg:
		return s.Sum / float64(s.Count), true
	default:
		return 0, false
	}
}

// SameValue reports whether two partial states are identical and can
// therefore ride in one packet shared between their queries. §3.2.2 shares
// one message among "all of the queries whose partial aggregation value are
// the same"; the paper's Figure 2 walk-through shows the criterion is the
// partial *state* — node B there sends separate messages for two MAX
// queries whose numeric maxima coincide but whose contributing sets differ.
// Identical full state (sum, count, min, max) is exactly "same partial
// aggregation", and is safe for every operator including AVG.
func (s AggState) SameValue(o AggState) bool {
	return s.Agg == o.Agg && s.Group == o.Group &&
		s.Sum == o.Sum && s.Count == o.Count &&
		s.MinV == o.MinV && s.MaxV == o.MaxV
}

// AggResult is one tuple of an aggregation query's result stream.
type AggResult struct {
	Time sim.Time
	Agg  Agg
	// Group is the GROUP BY bucket of the value (0 for ungrouped queries).
	Group int64
	Value float64
	// Empty marks an epoch where no node satisfied the predicates.
	Empty bool
}
