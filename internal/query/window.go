package query

import (
	"fmt"
	"math"
	"time"

	"repro/internal/field"
)

// Win is one windowed (temporal) aggregate of TinyDB's WINAVG family: each
// node computes Op over its own last Window samples of Attr and reports the
// value every Slide epochs. Windowed aggregates are node-local — they
// produce one derived value per node, like acquisition of a computed
// attribute — which is why their results ride the acquisition machinery.
type Win struct {
	Op   AggOp
	Attr field.Attr
	// Window is the number of most recent samples aggregated (≥ 1).
	Window int
	// Slide is the reporting period in epochs (≥ 1; 1 reports every epoch).
	Slide int
}

// String returns e.g. "WINAVG(light, 8, 2)".
func (w Win) String() string {
	if w.Slide == 1 {
		return fmt.Sprintf("WIN%s(%s, %d)", w.Op, w.Attr, w.Window)
	}
	return fmt.Sprintf("WIN%s(%s, %d, %d)", w.Op, w.Attr, w.Window, w.Slide)
}

// IsWindowed reports whether the query computes windowed aggregates.
func (q Query) IsWindowed() bool { return len(q.Wins) > 0 }

// ReportEvery returns the interval between result reports: Slide·Epoch for
// windowed queries (all wins of a query share one slide, enforced by
// Validate), Epoch otherwise.
func (q Query) ReportEvery() time.Duration {
	if len(q.Wins) > 0 {
		return time.Duration(q.Wins[0].Slide) * q.Epoch
	}
	return q.Epoch
}

// WinFor returns the window spec on attribute a, if any.
func (q Query) WinFor(a field.Attr) (Win, bool) {
	for _, w := range q.Wins {
		if w.Attr == a {
			return w, true
		}
	}
	return Win{}, false
}

// WindowRing holds a node's recent samples for one windowed aggregate. The
// zero value is unusable; construct with NewWindowRing.
type WindowRing struct {
	vals []float64
	next int
	n    int
}

// NewWindowRing returns a ring for the last `window` samples.
func NewWindowRing(window int) *WindowRing {
	if window < 1 {
		window = 1
	}
	return &WindowRing{vals: make([]float64, window)}
}

// Push appends a sample, evicting the oldest when full.
func (r *WindowRing) Push(v float64) {
	r.vals[r.next] = v
	r.next = (r.next + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
}

// Len returns how many samples the ring currently holds.
func (r *WindowRing) Len() int { return r.n }

// Aggregate computes op over the ring's contents; ok is false while the
// ring is empty. Partial windows (fewer than `window` samples yet) are
// aggregated over what is available, as TinyDB does at query start.
func (r *WindowRing) Aggregate(op AggOp) (v float64, ok bool) {
	if r.n == 0 {
		return 0, false
	}
	st := NewAggState(Agg{Op: op})
	start := r.next - r.n
	if start < 0 {
		start += len(r.vals)
	}
	for i := 0; i < r.n; i++ {
		st.Add(r.vals[(start+i)%len(r.vals)])
	}
	return st.Result()
}

// winsCompatible reports whether two window lists can share one synthetic
// query: an attribute may not carry two different computations (operator or
// window size), because a node-reported row holds one derived value per
// attribute. Differing slides are fine — the merge reports on the GCD
// schedule and each query decimates.
func winsCompatible(a, b []Win) bool {
	for _, wa := range a {
		for _, wb := range b {
			if wa.Attr == wb.Attr && (wa.Op != wb.Op || wa.Window != wb.Window) {
				return false
			}
		}
	}
	return true
}

// RowAttrs returns the attributes a query's result rows carry: the
// projection list plus windowed-value attributes.
func (q Query) RowAttrs() []field.Attr {
	if len(q.Wins) == 0 {
		return q.Attrs
	}
	attrs := make([]field.Attr, 0, len(q.Attrs)+len(q.Wins))
	attrs = append(attrs, q.Attrs...)
	for _, w := range q.Wins {
		attrs = append(attrs, w.Attr)
	}
	return dedupAttrs(attrs)
}

func dedupWins(wins []Win) []Win {
	if len(wins) == 0 {
		return nil
	}
	out := make([]Win, 0, len(wins))
	seen := make(map[Win]bool, len(wins))
	for _, w := range wins {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	// Insertion sort by attribute then op for a canonical order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && winLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func winLess(a, b Win) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Window < b.Window
}

// validateWins checks the windowed-query invariants.
func (q Query) validateWins() error {
	if len(q.Wins) == 0 {
		return nil
	}
	if len(q.Attrs) > 0 || len(q.Aggs) > 0 {
		return fmt.Errorf("query %d: windowed aggregates cannot mix with attribute or aggregate lists", q.ID)
	}
	if q.GroupBy != nil {
		return fmt.Errorf("query %d: GROUP BY does not apply to windowed aggregates", q.ID)
	}
	slide := q.Wins[0].Slide
	seen := make(map[field.Attr]Win, len(q.Wins))
	for _, w := range q.Wins {
		if w.Window < 1 || w.Window > 1024 {
			return fmt.Errorf("query %d: window size %d out of range", q.ID, w.Window)
		}
		if w.Slide < 1 {
			return fmt.Errorf("query %d: slide %d out of range", q.ID, w.Slide)
		}
		if w.Slide != slide {
			return fmt.Errorf("query %d: all windowed aggregates must share one slide", q.ID)
		}
		if prev, dup := seen[w.Attr]; dup && prev != w {
			return fmt.Errorf("query %d: conflicting window specs on %s", q.ID, w.Attr)
		}
		seen[w.Attr] = w
	}
	if math.MaxInt64/int64(slide) < int64(q.Epoch) {
		return fmt.Errorf("query %d: slide overflows", q.ID)
	}
	return nil
}
