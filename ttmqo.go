package ttmqo

import (
	"io"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/runner"
	"repro/internal/share"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Query model. The aliases expose the internal implementation types under
// stable public names so external code can declare variables of them.
type (
	// Query is a parsed TinyDB-dialect continuous query.
	Query = query.Query
	// QueryID identifies a user or synthetic query.
	QueryID = query.ID
	// Predicate is a closed value range on one attribute.
	Predicate = query.Predicate
	// Agg is one ⟨operator, attribute⟩ aggregate.
	Agg = query.Agg
	// AggOp is an aggregation operator.
	AggOp = query.AggOp
	// AggState is a mergeable partial aggregate.
	AggState = query.AggState
	// Attr is a sensed attribute.
	Attr = field.Attr
	// Row is one tuple of an acquisition result stream.
	Row = query.Row
	// AggResult is one tuple of an aggregation result stream.
	AggResult = query.AggResult
)

// Deployment and simulation.
type (
	// Topology is an immutable sensor deployment.
	Topology = topology.Topology
	// Point is a 2-D position in feet.
	Point = topology.Point
	// NodeID identifies a node; the base station is node 0.
	NodeID = topology.NodeID
	// Scheme selects the optimization tiers of a simulation.
	Scheme = network.Scheme
	// Simulation is a runnable simulated sensor network.
	Simulation = network.Simulation
	// SimulationConfig parametrizes NewSimulation.
	SimulationConfig = network.Config
	// Results collects a simulation's user-visible result streams.
	Results = network.Results
	// UserRows is one delivered acquisition epoch.
	UserRows = core.UserRows
	// UserAgg is one delivered aggregation epoch.
	UserAgg = core.UserAgg
	// Metrics is the radio accounting collector.
	Metrics = metrics.Collector
	// Policy selects the tier-2 node behaviours (for ablations).
	Policy = node.Policy
	// Field is the synthetic correlated sensor field.
	Field = field.Field
	// FieldConfig tunes the generated phenomena.
	FieldConfig = field.Config
	// Source abstracts reading generation.
	Source = field.Source
	// TraceSource replays recorded sensor readings (CSV traces).
	TraceSource = field.TraceSource
)

// Tier-1 optimizer.
type (
	// Optimizer is the base-station multi-query optimizer (§3.1).
	Optimizer = core.Optimizer
	// OptimizerOptions configures NewOptimizer.
	OptimizerOptions = core.Options
	// Change is the network effect of one optimizer operation.
	Change = core.Change
	// Explanation describes how a user query is served (Optimizer.Explain).
	Explanation = core.Explanation
	// CostModel evaluates the §3.1.2 cost equations.
	CostModel = cost.Model
	// CostConfig parametrizes NewCostModel.
	CostConfig = cost.Config
)

// Workloads.
type (
	// TimedQuery is one workload entry.
	TimedQuery = workload.TimedQuery
)

// Attributes.
const (
	AttrNodeID   = field.AttrNodeID
	AttrLight    = field.AttrLight
	AttrTemp     = field.AttrTemp
	AttrHumidity = field.AttrHumidity
	AttrVoltage  = field.AttrVoltage
)

// Aggregation operators.
const (
	Max   = query.Max
	Min   = query.Min
	Sum   = query.Sum
	Count = query.Count
	Avg   = query.Avg
)

// Schemes (the four bars of the paper's Figure 3).
const (
	SchemeBaseline      = network.Baseline
	SchemeBSOnly        = network.BSOnly
	SchemeInNetworkOnly = network.InNetworkOnly
	SchemeTTMQO         = network.TTMQO
)

// MinEpoch is the smallest allowed epoch duration (2048 ms, §3.2.1).
const MinEpoch = query.MinEpoch

// DefaultAlpha is the §3.1.4 termination parameter the paper finds best.
const DefaultAlpha = core.DefaultAlpha

// ParseQuery parses a TinyDB-dialect query string, e.g.
// "SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 8192ms".
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) Query { return query.MustParse(s) }

// NewTopology builds a deployment from explicit positions; positions[0] is
// the base station.
func NewTopology(positions []Point, radioRange float64) (*Topology, error) {
	return topology.New(positions, radioRange)
}

// NewGrid builds a side×side grid deployment.
func NewGrid(side int, spacing, radioRange float64) (*Topology, error) {
	return topology.NewGrid(side, spacing, radioRange)
}

// PaperGrid builds the paper's evaluation deployment: a side×side grid with
// 20 ft spacing and 50 ft radio range, base station at the corner.
func PaperGrid(side int) (*Topology, error) { return topology.PaperGrid(side) }

// Figure2Topology builds the 8-node deployment of the paper's Figure 2
// worked example.
func Figure2Topology() (*Topology, error) { return topology.Figure2() }

// NewSimulation builds a runnable simulated sensor network.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) { return network.New(cfg) }

// NewField builds the seeded correlated sensor field for a deployment.
func NewField(topo *Topology, cfg FieldConfig) *Field { return field.New(topo, cfg) }

// LoadTraceCSV reads a sensor trace ("at_ms,node,attr,value" rows) for use
// as a simulation's Source — the substitution hook for real deployment
// data.
func LoadTraceCSV(r io.Reader) (*TraceSource, error) { return field.LoadTraceCSV(r) }

// RecordTrace samples a Source at fixed intervals into a replayable trace.
func RecordTrace(src Source, topo *Topology, attrs []Attr, every, span time.Duration) *TraceSource {
	return field.Record(src, topo, attrs, every, span)
}

// NewCostModel builds the §3.1.2 cost model for a deployment's per-level
// node counts (levelSizes[0] is the base station).
func NewCostModel(levelSizes []int, cfg CostConfig) (*CostModel, error) {
	return cost.NewModel(levelSizes, cfg)
}

// NewOptimizer builds a standalone tier-1 optimizer. Feed it user queries
// with Insert/Terminate and apply the returned Changes to your network.
func NewOptimizer(model *CostModel, opts OptimizerOptions) *Optimizer {
	return core.NewOptimizer(model, opts)
}

// InNetworkPolicy returns the full tier-2 policy set (for ablations,
// disable individual fields and pass as SimulationConfig.PolicyOverride).
func InNetworkPolicy() Policy { return node.InNetwork() }

// WorkloadA, WorkloadB and WorkloadC are the static workloads of the
// paper's Figure 3.
func WorkloadA() []TimedQuery { return workload.A() }

// WorkloadB is the tier-2-favouring Figure 3 workload.
func WorkloadB() []TimedQuery { return workload.B() }

// WorkloadC is the mixed Figure 3 workload.
func WorkloadC() []TimedQuery { return workload.C() }

// RandomWorkload generates the §4.3 adaptive workload.
func RandomWorkload(cfg RandomWorkloadConfig) []TimedQuery { return workload.Random(cfg) }

// RandomWorkloadConfig parametrizes RandomWorkload.
type RandomWorkloadConfig = workload.RandomConfig

// SelectivityWorkload generates the Figure 5 workload.
func SelectivityWorkload(cfg SelectivityWorkloadConfig) []TimedQuery {
	return workload.Selectivity(cfg)
}

// SelectivityWorkloadConfig parametrizes SelectivityWorkload.
type SelectivityWorkloadConfig = workload.SelectivityConfig

// Experiment harnesses: one per figure of the paper's evaluation. See
// EXPERIMENTS.md for the recorded results.
type (
	// Fig2Row is one mode of the Figure 2 worked example.
	Fig2Row = experiments.Fig2Row
	// Fig3Config parametrizes RunFigure3.
	Fig3Config = experiments.Fig3Config
	// Fig3Row is one bar of Figure 3.
	Fig3Row = experiments.Fig3Row
	// Fig4Config parametrizes the Figure 4 studies.
	Fig4Config = experiments.Fig4Config
	// Fig4Point is one point of a Figure 4 series.
	Fig4Point = experiments.Fig4Point
	// Fig5Config parametrizes RunFigure5.
	Fig5Config = experiments.Fig5Config
	// Fig5Row is one point of a Figure 5 series.
	Fig5Row = experiments.Fig5Row
	// AblationConfig parametrizes RunAblation.
	AblationConfig = experiments.AblationConfig
	// AblationRow is one variant of the tier-2 ablation study.
	AblationRow = experiments.AblationRow
	// ReliabilityConfig parametrizes RunReliability.
	ReliabilityConfig = experiments.ReliabilityConfig
	// ReliabilityRow is one cell of the failure study.
	ReliabilityRow = experiments.ReliabilityRow
	// ChaosConfig parametrizes RunChaos.
	ChaosConfig = experiments.ChaosConfig
	// ChaosRow is one scenario's outcome in the chaos study.
	ChaosRow = experiments.ChaosRow
	// ChaosScenario is a scripted fault schedule for the chaos harness
	// (see chaos.ParseScenario for the text format and chaos.Builtin for
	// the canned schedules).
	ChaosScenario = chaos.Scenario
	// FailureConfig injects node outages into a simulation.
	FailureConfig = network.FailureConfig
	// LifetimeConfig parametrizes RunLifetime.
	LifetimeConfig = experiments.LifetimeConfig
	// LifetimeRow is one scheme's energy outcome.
	LifetimeRow = experiments.LifetimeRow
	// ScalingConfig parametrizes RunScaling.
	ScalingConfig = experiments.ScalingConfig
	// ScalingRow is one (size, scheme) cell of the scaling study.
	ScalingRow = experiments.ScalingRow
	// FederationScalingConfig parametrizes RunFederationScaling.
	FederationScalingConfig = experiments.FederationScalingConfig
	// FederationScalingRow is one fleet-size cell of the federation
	// scaling study.
	FederationScalingRow = experiments.FederationScalingRow
	// ShareStudyConfig parametrizes RunShareStudy.
	ShareStudyConfig = experiments.ShareStudyConfig
	// ShareStudyRow is one (overlap, sharing on/off) cell of the
	// cross-query sharing study.
	ShareStudyRow = experiments.ShareStudyRow
	// EnergyModel converts radio and sensing activity into Joules.
	EnergyModel = metrics.EnergyModel
	// SweepTiming records a sweep's wall-clock accounting; point a config's
	// Timing field at one to collect it. Every experiment config also has a
	// Parallelism knob capping its worker pool (<= 0: one worker per CPU);
	// result rows are identical at any setting.
	SweepTiming = runner.Timing
	// StudyTiming pairs a study name with its sweep timing in a Report.
	StudyTiming = experiments.StudyTiming
	// Trace is a structured event log of a simulation run; pass one in
	// SimulationConfig.Trace.
	Trace = trace.Buffer
	// TraceEvent is one trace log entry.
	TraceEvent = trace.Event
	// TraceKind classifies trace events.
	TraceKind = trace.Kind
)

// Observability layer (internal/obs): run manifests, virtual-time series
// sampling, and machine-readable exports. A Simulation's Manifest method
// returns its identifying metadata; StartSeries attaches a sampler driven
// by the discrete-event engine.
type (
	// Manifest identifies one run or sweep (scheme, seed, topology, config
	// hash, tool version); attached to every JSON export.
	Manifest = obs.Manifest
	// Sample is one virtual-time snapshot of a running simulation.
	Sample = obs.Sample
	// TimeSeries is the ordered sample log of one run (CSV/JSON exportable).
	TimeSeries = obs.Series
	// SweepExport is the JSON envelope for experiment sweeps: manifest +
	// named study row sets.
	SweepExport = obs.Export
	// SweepStudy is one named row set inside a SweepExport.
	SweepStudy = obs.Study
	// RunExport is the JSON envelope for a single simulation run.
	RunExport = obs.RunExport
	// FinalMetrics is the flattened end-of-run accounting of a simulation.
	FinalMetrics = obs.FinalMetrics
	// NodeMetrics is one node's final radio/energy accounting.
	NodeMetrics = obs.NodeMetrics
	// OptimizerState is the exported tier-1 optimizer state.
	OptimizerState = obs.OptimizerState
	// QuerySpan is one query's lifecycle span: admission, install flood,
	// first result, cancellation — all in virtual time. A Simulation
	// records one per admitted user query; Spans().Snapshot() reads them.
	QuerySpan = telemetry.QuerySpan
	// SpanSummary aggregates a run's query spans for export: flood/dedup
	// counts and the time-to-first-result distribution.
	SpanSummary = obs.SpanSummary
)

// SummarizeSpans reduces a span snapshot to its export summary (nil when
// no queries were recorded, so the JSON field is omitted).
func SummarizeSpans(spans []QuerySpan) *SpanSummary { return obs.SummarizeSpans(spans) }

// Serving tier (internal/gateway): a goroutine-safe multi-client gateway in
// front of a Simulation. Concurrent sessions subscribe with query text;
// semantically equal queries (same canonical form after normalization) share
// one in-network query, results fan out over bounded per-subscriber buffers,
// and a group-commit mailbox keeps runs deterministic under any goroutine
// schedule. ttmqo-serve exposes it over TCP.
type (
	// Gateway is the concurrent query-serving front end.
	Gateway = gateway.Gateway
	// GatewayConfig parametrizes NewGateway.
	GatewayConfig = gateway.Config
	// GatewaySession is one registered client's handle.
	GatewaySession = gateway.Session
	// GatewayStats is the gateway's counter snapshot.
	GatewayStats = gateway.Stats
	// Subscription is one client's live attachment to a shared query.
	Subscription = gateway.Subscription
	// SubscriptionID identifies a subscription within its gateway.
	SubscriptionID = gateway.SubID
	// Update is one result epoch delivered to one subscriber.
	Update = gateway.Update
	// CloseReason says why a subscription's update stream ended.
	CloseReason = gateway.CloseReason
	// GatewayServer serves the newline-delimited JSON protocol over TCP.
	GatewayServer = gateway.Server
	// GatewayServerConfig parametrizes NewGatewayServer.
	GatewayServerConfig = gateway.ServerConfig
	// LoadgenConfig parametrizes RunLoadgen.
	LoadgenConfig = gateway.LoadgenConfig
	// LoadReport is a load-generator run's outcome.
	LoadReport = gateway.LoadReport
	// GatewayMetrics is the gateway counter block of a RunExport.
	GatewayMetrics = obs.GatewayMetrics
	// ShareCoordinator is the tier-2 cross-query sharing layer: fragment
	// CSE plus a windowed result cache in front of a gateway or router.
	ShareCoordinator = share.Coordinator
	// ShareConfig parametrizes NewShareCoordinator.
	ShareConfig = share.Config
	// ShareStats is the sharing layer's counter snapshot.
	ShareStats = share.Stats
)

// NewGateway builds a serving gateway around a fresh Simulation.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// NewShareCoordinator builds the cross-query sharing layer over an
// upstream serving tier (share.OverGateway or share.OverRouter).
func NewShareCoordinator(cfg ShareConfig) (*ShareCoordinator, error) { return share.New(cfg) }

// NewGatewayServer starts serving a gateway over TCP with a wall-clock
// pacer; Close the server before the gateway.
func NewGatewayServer(gw *Gateway, cfg GatewayServerConfig) (*GatewayServer, error) {
	return gateway.NewServer(gw, cfg)
}

// CanonicalQueryKey returns the semantic dedup key of a query: its canonical
// textual form after normalization, ignoring identity and lifetime.
func CanonicalQueryKey(q Query) string { return gateway.CanonicalKey(q) }

// RunLoadgen drives a fresh gateway with concurrent synthetic clients and
// reports admission/dedup counters, throughput and latency percentiles.
func RunLoadgen(cfg LoadgenConfig) (*LoadReport, error) { return gateway.RunLoadgen(cfg) }

// DefaultSampleInterval is StartSeries's sampling period when none is given.
const DefaultSampleInterval = network.DefaultSampleInterval

// WriteJSON marshals any export envelope as deterministic indented JSON.
func WriteJSON(w io.Writer, v any) error { return obs.WriteJSON(w, v) }

// CollectFinalMetrics flattens a simulation's metrics collector for export.
func CollectFinalMetrics(c *Metrics, simTime time.Duration, em EnergyModel) FinalMetrics {
	return obs.CollectFinal(c, simTime, em)
}

// SweepManifest builds the manifest attached to an exported experiment
// sweep (no wall-clock state — identical bytes at any parallelism).
func SweepManifest(study string, seed int64, dur time.Duration, runs int) Manifest {
	return experiments.SweepManifest(study, seed, dur, runs)
}

// WriteSweepJSON exports one or more studies' rows under a manifest.
func WriteSweepJSON(w io.Writer, m Manifest, studies ...SweepStudy) error {
	return experiments.WriteSweepJSON(w, m, studies...)
}

// RunFigure2Example reproduces the §3.2.2 worked example (message counts on
// the Figure 2 topology).
func RunFigure2Example() ([]Fig2Row, error) { return experiments.RunFigure2Example() }

// RunFigure3 measures average transmission time per scheme, workload and
// network size.
func RunFigure3(cfg Fig3Config) ([]Fig3Row, error) { return experiments.RunFigure3(cfg) }

// RunFigure4A sweeps concurrency at α = 0.6 (benefit ratio).
func RunFigure4A(cfg Fig4Config) ([]Fig4Point, error) { return experiments.RunFigure4A(cfg) }

// RunFigure4B sweeps α at 8 concurrent queries.
func RunFigure4B(cfg Fig4Config) ([]Fig4Point, error) { return experiments.RunFigure4B(cfg) }

// RunFigure4C reports the synthetic-query count across concurrency and α.
func RunFigure4C(cfg Fig4Config) ([]Fig4Point, error) { return experiments.RunFigure4C(cfg) }

// RunFigure5 sweeps predicate selectivity for three aggregation mixes.
func RunFigure5(cfg Fig5Config) ([]Fig5Row, error) { return experiments.RunFigure5(cfg) }

// RunAblation measures the contribution of each tier-2 mechanism (full
// TTMQO versus TTMQO with one mechanism removed).
func RunAblation(cfg AblationConfig) ([]AblationRow, error) { return experiments.RunAblation(cfg) }

// RunReliability sweeps node-failure rates and measures result completeness
// against ground truth (the paper's §5 future-work direction, built as an
// extension).
func RunReliability(cfg ReliabilityConfig) ([]ReliabilityRow, error) {
	return experiments.RunReliability(cfg)
}

// RunChaos drives the full serving stack (simulation, gateway with WAL
// crash recovery, reconnecting clients) through scripted fault scenarios —
// node churn, loss bursts, partitions, gateway crashes — and reports the
// user-visible damage plus any delivery-invariant violations.
func RunChaos(cfg ChaosConfig) ([]ChaosRow, error) { return experiments.RunChaos(cfg) }

// ChaosString renders the chaos study as a text table.
func ChaosString(rows []ChaosRow) string { return experiments.ChaosString(rows) }

// ScalingString renders the scaling study as a text table, including the
// per-query time-to-first-result columns.
func ScalingString(rows []ScalingRow) string { return experiments.ScalingString(rows) }

// ParseChaosScenario reads a fault scenario in the chaos text format;
// BuiltinChaosScenario returns a canned one by name (none, churn, burst,
// partition, crash, mixed).
func ParseChaosScenario(text string) (*ChaosScenario, error) { return chaos.ParseScenario(text) }

// BuiltinChaosScenario returns a canned scenario by name.
func BuiltinChaosScenario(name string) (*ChaosScenario, error) { return chaos.Builtin(name) }

// RunLifetime measures per-scheme energy consumption and extrapolated
// network lifetime (time until the busiest node's battery dies).
func RunLifetime(cfg LifetimeConfig) ([]LifetimeRow, error) {
	return experiments.RunLifetime(cfg)
}

// RunScaling sweeps network sizes for the baseline and TTMQO, extending
// Figure 3's two sizes into a curve (with result latency).
func RunScaling(cfg ScalingConfig) ([]ScalingRow, error) { return experiments.RunScaling(cfg) }

// RunFederationScaling sweeps router fleet sizes with constant per-shard
// load, measuring downstream subscriber throughput against shard count.
func RunFederationScaling(cfg FederationScalingConfig) ([]FederationScalingRow, error) {
	return experiments.RunFederationScaling(cfg)
}

// FederationScalingString renders the federation scaling study as a text
// table.
func FederationScalingString(rows []FederationScalingRow) string {
	return experiments.FederationScalingString(rows)
}

// RunShareStudy sweeps query-overlap factors with the tier-2 sharing
// layer on and off, measuring injected tier-1 messages and cold vs
// warm-cache late-subscriber time-to-first-result.
func RunShareStudy(cfg ShareStudyConfig) ([]ShareStudyRow, error) {
	return experiments.RunShareStudy(cfg)
}

// ShareStudyString renders the cross-query sharing study as a text table.
func ShareStudyString(rows []ShareStudyRow) string {
	return experiments.ShareStudyString(rows)
}

// DefaultEnergyModel returns the mica2-flavoured energy defaults.
func DefaultEnergyModel() EnergyModel { return metrics.DefaultEnergyModel() }

// ReportConfig parametrizes RunAllExperiments.
type ReportConfig = experiments.ReportConfig

// Report bundles one full evaluation run; its Markdown method renders it.
type Report = experiments.Report

// RunAllExperiments executes every figure and extension study and returns
// the bundled report.
func RunAllExperiments(cfg ReportConfig) (*Report, error) { return experiments.RunAll(cfg) }

// DefaultWorkers resolves a Parallelism setting: n when positive, one
// worker per CPU otherwise.
func DefaultWorkers(n int) int { return runner.DefaultWorkers(n) }

// Savings returns (baseline − value) / baseline, the figures' y axis.
func Savings(baseline, value float64) float64 { return metrics.Savings(baseline, value) }

// EpochGCD returns the greatest common divisor of two epoch durations.
func EpochGCD(a, b time.Duration) time.Duration { return query.EpochGCD(a, b) }
