package ttmqo_test

import (
	"testing"
	"time"

	ttmqo "repro"
)

// The facade tests exercise the library exactly the way README's examples
// do: through the public API only.

func TestQuickstartFlow(t *testing.T) {
	topo, err := ttmqo.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:   topo,
		Scheme: ttmqo.SchemeTTMQO,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := sim.Post(ttmqo.MustParseQuery(
		"SELECT nodeid, light WHERE light > 200 EPOCH DURATION 4096ms"))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2 * time.Minute)
	if sim.Results().RowEpochs(id) == 0 {
		t.Fatal("no epochs delivered")
	}
	if sim.AvgTransmissionTime() <= 0 {
		t.Fatal("no radio activity measured")
	}
}

func TestStandaloneOptimizer(t *testing.T) {
	topo, err := ttmqo.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ttmqo.NewCostModel(topo.LevelSizes(), ttmqo.CostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ttmqo.NewOptimizer(model, ttmqo.OptimizerOptions{Alpha: ttmqo.DefaultAlpha})

	q1 := ttmqo.MustParseQuery("SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	q1.ID = 1
	q2 := ttmqo.MustParseQuery("SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	q2.ID = 2
	ch1, err := opt.Insert(q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch1.Inject) != 1 {
		t.Fatalf("first insert: %+v", ch1)
	}
	ch2, err := opt.Insert(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch2.Inject) != 1 || len(ch2.Abort) != 1 {
		t.Fatalf("merge expected: %+v", ch2)
	}
	if opt.SyntheticCount() != 1 {
		t.Fatalf("synthetic count = %d", opt.SyntheticCount())
	}
}

func TestSchemesComparable(t *testing.T) {
	topo, err := ttmqo.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	tx := make(map[ttmqo.Scheme]float64)
	for _, scheme := range []ttmqo.Scheme{ttmqo.SchemeBaseline, ttmqo.SchemeTTMQO} {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo: topo, Scheme: scheme, Seed: 3, DiscardResults: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ttmqo.WorkloadA() {
			sim.PostAt(w.Arrive, w.Query)
		}
		sim.Run(3 * time.Minute)
		tx[scheme] = sim.AvgTransmissionTime()
	}
	if save := ttmqo.Savings(tx[ttmqo.SchemeBaseline], tx[ttmqo.SchemeTTMQO]); save < 0.4 {
		t.Fatalf("TTMQO savings on workload A = %.2f, want ≥ 0.4", save)
	}
}

func TestPublicHelpers(t *testing.T) {
	if got := ttmqo.EpochGCD(8192*time.Millisecond, 12288*time.Millisecond); got != 4096*time.Millisecond {
		t.Fatalf("EpochGCD = %v", got)
	}
	if ttmqo.AttrLight.String() != "light" {
		t.Fatal("attr naming broken")
	}
	q := ttmqo.MustParseQuery("SELECT MAX(light) EPOCH DURATION 4096")
	if !q.IsAggregation() || q.Aggs[0].Op != ttmqo.Max {
		t.Fatalf("parsed: %v", q)
	}
	ws := ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{Seed: 1, NumQueries: 10})
	if len(ws) != 10 {
		t.Fatal("workload generation broken")
	}
	if _, err := ttmqo.Figure2Topology(); err != nil {
		t.Fatal(err)
	}
	if _, err := ttmqo.NewTopology([]ttmqo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}}, 50); err != nil {
		t.Fatal(err)
	}
	topo, _ := ttmqo.PaperGrid(3)
	f := ttmqo.NewField(topo, ttmqo.FieldConfig{Seed: 9})
	if v := f.Reading(1, ttmqo.AttrLight, time.Minute); v < 0 || v > 1000 {
		t.Fatalf("field reading %f out of range", v)
	}
	p := ttmqo.InNetworkPolicy()
	if !p.AlignedEpochs || !p.QueryAwareDAG || !p.SharedMessages {
		t.Fatal("in-network policy incomplete")
	}
}

func TestAblationViaPolicyOverride(t *testing.T) {
	topo, err := ttmqo.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	// Full in-network policy versus no-DAG ablation on workload B.
	run := func(p ttmqo.Policy) float64 {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo: topo, Scheme: ttmqo.SchemeInNetworkOnly, Seed: 5,
			PolicyOverride: &p, DiscardResults: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ttmqo.WorkloadB() {
			sim.PostAt(w.Arrive, w.Query)
		}
		sim.Run(3 * time.Minute)
		return sim.AvgTransmissionTime()
	}
	full := run(ttmqo.InNetworkPolicy())
	noDAG := ttmqo.InNetworkPolicy()
	noDAG.QueryAwareDAG = false
	noDAG.Multicast = false
	noDAG.Sleep = false
	ablated := run(noDAG)
	if full >= ablated {
		t.Fatalf("DAG ablation should cost traffic: full=%.5f ablated=%.5f", full, ablated)
	}
}
